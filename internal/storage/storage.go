// Package storage abstracts the persistent medium underneath the LSM store.
//
// Two implementations are provided:
//
//   - OSFS: the real filesystem, for durable deployments.
//   - MemFS: an in-memory filesystem that simulates the paper's SSD array.
//     The evaluated workloads in §5.1–5.2 of the paper are CPU-bound (reads
//     served from cache, writes batched sequentially), so MemFS preserves
//     the synchronization behaviour under study while keeping benchmarks
//     hermetic. A configurable write-bandwidth throttle reproduces the
//     disk-bound regime of §5.3 (Fig. 11).
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNotExist is returned when a named file is absent.
var ErrNotExist = errors.New("storage: file does not exist")

// File is a sequentially writable file.
type File interface {
	io.Writer
	// Sync flushes buffered data to the medium.
	Sync() error
	io.Closer
}

// RandomReader reads a file at arbitrary offsets.
type RandomReader interface {
	io.ReaderAt
	// Size returns the file length in bytes.
	Size() int64
	io.Closer
}

// FS is the filesystem interface the engine is written against.
type FS interface {
	// Create truncates/creates the named file for sequential writing.
	Create(name string) (File, error)
	// Open opens the named file for random reads.
	Open(name string) (RandomReader, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	// List returns the file names under the root, sorted.
	List() ([]string, error)
	// ReadFile reads a whole small file (CURRENT, MANIFEST bootstrap).
	ReadFile(name string) ([]byte, error)
	// WriteFile atomically writes a whole small file.
	WriteFile(name string, data []byte) error
	// Link makes newname in dst refer to oldname's current content
	// without rewriting it when the medium allows (a hard link between
	// two OSFS roots on one device); otherwise it copies. Checkpoints
	// use it to materialize a version's sstables in another directory
	// at O(1) cost per file.
	Link(oldname string, dst FS, newname string) error
}

// copyLink is the portable Link fallback: read the whole file from src
// and atomically write it into dst.
func copyLink(src FS, oldname string, dst FS, newname string) error {
	data, err := src.ReadFile(oldname)
	if err != nil {
		return err
	}
	return dst.WriteFile(newname, data)
}

// ---------------------------------------------------------------------------
// OSFS

// OSFS implements FS on a directory of the host filesystem.
type OSFS struct {
	root string
}

// NewOSFS creates (if needed) and wraps the given directory.
func NewOSFS(root string) (*OSFS, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir root: %w", err)
	}
	return &OSFS{root: root}, nil
}

func (fs *OSFS) path(name string) string { return filepath.Join(fs.root, name) }

// Create implements FS.
func (fs *OSFS) Create(name string) (File, error) {
	f, err := os.Create(fs.path(name))
	if err != nil {
		return nil, err
	}
	return f, nil
}

type osRandomReader struct {
	f    *os.File
	size int64
}

func (r *osRandomReader) ReadAt(p []byte, off int64) (int, error) { return r.f.ReadAt(p, off) }
func (r *osRandomReader) Size() int64                             { return r.size }
func (r *osRandomReader) Close() error                            { return r.f.Close() }

// Open implements FS.
func (fs *OSFS) Open(name string) (RandomReader, error) {
	f, err := os.Open(fs.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotExist
		}
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &osRandomReader{f: f, size: st.Size()}, nil
}

// Remove implements FS.
func (fs *OSFS) Remove(name string) error { return os.Remove(fs.path(name)) }

// Rename implements FS.
func (fs *OSFS) Rename(oldname, newname string) error {
	return os.Rename(fs.path(oldname), fs.path(newname))
}

// List implements FS.
func (fs *OSFS) List() ([]string, error) {
	ents, err := os.ReadDir(fs.root)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements FS.
func (fs *OSFS) ReadFile(name string) ([]byte, error) {
	b, err := os.ReadFile(fs.path(name))
	if os.IsNotExist(err) {
		return nil, ErrNotExist
	}
	return b, err
}

// WriteFile implements FS.
func (fs *OSFS) WriteFile(name string, data []byte) error {
	tmp := fs.path(name + ".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, fs.path(name))
}

// Link implements FS. When dst is another OSFS it hard-links (falling
// back to a copy if the roots span devices); otherwise it copies.
func (fs *OSFS) Link(oldname string, dst FS, newname string) error {
	if dfs, ok := dst.(*OSFS); ok {
		err := os.Link(fs.path(oldname), dfs.path(newname))
		if err == nil {
			return nil
		}
		if os.IsNotExist(err) {
			return ErrNotExist
		}
		// EXDEV or a filesystem without hard links: copy instead.
	}
	return copyLink(fs, oldname, dst, newname)
}

// ---------------------------------------------------------------------------
// MemFS

// MemFS is an in-memory FS. It is safe for concurrent use and optionally
// throttles write bandwidth to model a real device.
type MemFS struct {
	mu    sync.RWMutex
	files map[string]*memFile

	// WriteBytesPerSec, when > 0, rate-limits writes the way a saturated
	// SSD would: each Write sleeps long enough to stay under the budget.
	throttle *throttle
}

// NewMemFS returns an empty in-memory filesystem with no throttling.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}}
}

// NewThrottledMemFS returns a MemFS whose aggregate write bandwidth is
// limited to bytesPerSec, simulating a disk-bound device (§5.3).
func NewThrottledMemFS(bytesPerSec int64) *MemFS {
	fs := NewMemFS()
	if bytesPerSec > 0 {
		fs.throttle = newThrottle(bytesPerSec)
	}
	return fs
}

type memFile struct {
	mu   sync.RWMutex
	data []byte
}

type memWriter struct {
	fs   *MemFS
	f    *memFile
	open bool
}

func (w *memWriter) Write(p []byte) (int, error) {
	if !w.open {
		return 0, errors.New("storage: write to closed file")
	}
	if w.fs.throttle != nil {
		w.fs.throttle.wait(int64(len(p)))
	}
	w.f.mu.Lock()
	w.f.data = append(w.f.data, p...)
	w.f.mu.Unlock()
	return len(p), nil
}

func (w *memWriter) Sync() error { return nil }
func (w *memWriter) Close() error {
	w.open = false
	return nil
}

type memReader struct {
	f *memFile
}

func (r *memReader) ReadAt(p []byte, off int64) (int, error) {
	r.f.mu.RLock()
	defer r.f.mu.RUnlock()
	if off >= int64(len(r.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, r.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (r *memReader) Size() int64 {
	r.f.mu.RLock()
	defer r.f.mu.RUnlock()
	return int64(len(r.f.data))
}

func (r *memReader) Close() error { return nil }

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &memFile{}
	fs.files[name] = f
	return &memWriter{fs: fs, f: f, open: true}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (RandomReader, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, ErrNotExist
	}
	return &memReader{f: f}, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return ErrNotExist
	}
	delete(fs.files, name)
	return nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[oldname]
	if !ok {
		return ErrNotExist
	}
	delete(fs.files, oldname)
	fs.files[newname] = f
	return nil
}

// List implements FS.
func (fs *MemFS) List() ([]string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements FS.
func (fs *MemFS) ReadFile(name string) ([]byte, error) {
	fs.mu.RLock()
	f, ok := fs.files[name]
	fs.mu.RUnlock()
	if !ok {
		return nil, ErrNotExist
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// WriteFile implements FS.
func (fs *MemFS) WriteFile(name string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = &memFile{data: append([]byte(nil), data...)}
	return nil
}

// Link implements FS by copying: MemFS has no notion of shared inodes,
// and an independent copy keeps crash-harness durable images honest.
func (fs *MemFS) Link(oldname string, dst FS, newname string) error {
	return copyLink(fs, oldname, dst, newname)
}

// Snapshot returns a deep copy of the filesystem image: every file name
// mapped to its current content. Used by the crash-consistency harness to
// freeze and later rehydrate on-disk states.
func (fs *MemFS) Snapshot() map[string][]byte {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make(map[string][]byte, len(fs.files))
	for name, f := range fs.files {
		f.mu.RLock()
		out[name] = append([]byte(nil), f.data...)
		f.mu.RUnlock()
	}
	return out
}

// NewMemFSFromSnapshot builds a MemFS holding a deep copy of image, the
// inverse of Snapshot.
func NewMemFSFromSnapshot(image map[string][]byte) *MemFS {
	fs := NewMemFS()
	for name, data := range image {
		fs.files[name] = &memFile{data: append([]byte(nil), data...)}
	}
	return fs
}

// TotalSize reports the bytes held across all files (tests, metrics).
func (fs *MemFS) TotalSize() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for _, f := range fs.files {
		f.mu.RLock()
		n += int64(len(f.data))
		f.mu.RUnlock()
	}
	return n
}

// ---------------------------------------------------------------------------
// throttle

// throttle is a token bucket refilled at bytesPerSec.
type throttle struct {
	mu          sync.Mutex
	bytesPerSec int64
	tokens      int64
	last        time.Time
}

func newThrottle(bps int64) *throttle {
	return &throttle{bytesPerSec: bps, tokens: bps / 10, last: time.Now()}
}

func (t *throttle) wait(n int64) {
	t.mu.Lock()
	now := time.Now()
	elapsed := now.Sub(t.last)
	t.last = now
	t.tokens += int64(elapsed.Seconds() * float64(t.bytesPerSec))
	if max := t.bytesPerSec / 4; t.tokens > max {
		t.tokens = max
	}
	t.tokens -= n
	var sleep time.Duration
	if t.tokens < 0 {
		sleep = time.Duration(float64(-t.tokens) / float64(t.bytesPerSec) * float64(time.Second))
	}
	t.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
}

// CleanPath validates a file name used with an FS (no separators, no
// traversal). The engine generates all names itself; this guards tools that
// accept user input.
func CleanPath(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("storage: invalid file name %q", name)
	}
	return nil
}
