package storage

import "strings"

// PrefixFS namespaces an FS: every file the wrapped view touches is
// stored in the parent under prefix+name, and List shows only (and
// strips the prefix from) the view's own files. It lets several engines
// — e.g. the shards of one store in the crash harness — share a single
// underlying filesystem while keeping their file sets disjoint, so one
// fault-injection wrapper observes and captures all of them at once.
type PrefixFS struct {
	parent FS
	prefix string
}

// NewPrefixFS returns a view of parent under prefix. The prefix must
// keep names valid for the parent (MemFS and OSFS reject separators, so
// use flat prefixes like "s0-").
func NewPrefixFS(parent FS, prefix string) *PrefixFS {
	return &PrefixFS{parent: parent, prefix: prefix}
}

func (p *PrefixFS) Create(name string) (File, error) {
	return p.parent.Create(p.prefix + name)
}

func (p *PrefixFS) Open(name string) (RandomReader, error) {
	return p.parent.Open(p.prefix + name)
}

func (p *PrefixFS) Remove(name string) error {
	return p.parent.Remove(p.prefix + name)
}

func (p *PrefixFS) Rename(oldname, newname string) error {
	return p.parent.Rename(p.prefix+oldname, p.prefix+newname)
}

func (p *PrefixFS) List() ([]string, error) {
	all, err := p.parent.List()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, name := range all {
		if rest, ok := strings.CutPrefix(name, p.prefix); ok {
			out = append(out, rest)
		}
	}
	return out, nil
}

func (p *PrefixFS) ReadFile(name string) ([]byte, error) {
	return p.parent.ReadFile(p.prefix + name)
}

func (p *PrefixFS) WriteFile(name string, data []byte) error {
	return p.parent.WriteFile(p.prefix+name, data)
}

// Link forwards to the parent when dst is a view of the same kind (so an
// OSFS underneath can still hard-link); otherwise it copies through the
// view, keeping the prefix translation on both sides.
func (p *PrefixFS) Link(oldname string, dst FS, newname string) error {
	if d, ok := dst.(*PrefixFS); ok {
		return p.parent.Link(p.prefix+oldname, d.parent, d.prefix+newname)
	}
	return p.parent.Link(p.prefix+oldname, dst, newname)
}
