package compaction

import "clsm/internal/version"

// JobPlan names one unit of compaction work the scheduler should queue:
// either a score-driven level compaction (Level >= 0) or a seek-triggered
// one (Seek true, Level -1). Score orders jobs within the scheduler's
// level band; Debt is the level's contribution to the admission
// controller's backlog signal.
type JobPlan struct {
	Level int
	Score float64
	Seek  bool
	Debt  uint64
}

// Plan surveys the current version and returns the compactions worth
// queueing, highest-level-pressure first only in the sense that each entry
// carries its score — ordering is the scheduler's job. Returns nil when
// the tree is in shape (no allocation on the idle path, which the write
// path's allocation budget depends on).
func Plan(set *version.Set) []JobPlan {
	v := set.Current()
	if v == nil {
		return nil
	}
	defer v.Unref()
	var plans []JobPlan
	for level := 0; level < version.NumLevels-1; level++ {
		if sc := set.Score(v, level); sc > 0.99 {
			plans = append(plans, JobPlan{
				Level: level,
				Score: sc,
				Debt:  set.DebtBytes(v, level),
			})
		}
	}
	if set.PendingSeeks() > 0 {
		plans = append(plans, JobPlan{Level: -1, Seek: true})
	}
	return plans
}
