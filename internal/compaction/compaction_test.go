package compaction

import (
	"fmt"
	"sort"
	"testing"

	"clsm/internal/iterator"
	"clsm/internal/keys"
	"clsm/internal/memtable"
	"clsm/internal/storage"
	"clsm/internal/version"
)

// sliceIter is a test iterator over in-memory pairs.
type sliceIter struct {
	ks, vs [][]byte
	i      int
}

func newSliceIter(pairs map[string]string, ts func(k string) uint64) *sliceIter {
	it := &sliceIter{}
	var sorted [][]byte
	for k := range pairs {
		sorted = append(sorted, keys.Make([]byte(k), ts(k), keys.KindValue))
	}
	sort.Slice(sorted, func(i, j int) bool { return keys.Compare(sorted[i], sorted[j]) < 0 })
	for _, ik := range sorted {
		it.ks = append(it.ks, ik)
		it.vs = append(it.vs, []byte(pairs[string(keys.UserKey(ik))]))
	}
	it.i = -1
	return it
}

func (it *sliceIter) First() { it.i = 0 }
func (it *sliceIter) SeekGE(ik []byte) {
	it.i = sort.Search(len(it.ks), func(i int) bool { return keys.Compare(it.ks[i], ik) >= 0 })
}
func (it *sliceIter) Next()         { it.i++ }
func (it *sliceIter) Valid() bool   { return it.i >= 0 && it.i < len(it.ks) }
func (it *sliceIter) Key() []byte   { return it.ks[it.i] }
func (it *sliceIter) Value() []byte { return it.vs[it.i] }
func (it *sliceIter) Err() error    { return nil }

func TestMergeIterInterleaves(t *testing.T) {
	a := newSliceIter(map[string]string{"a": "1", "c": "3", "e": "5"}, func(string) uint64 { return 10 })
	b := newSliceIter(map[string]string{"b": "2", "d": "4"}, func(string) uint64 { return 10 })
	m := NewMergeIter([]iterator.Iterator{a, b})
	var got []string
	for m.First(); m.Valid(); m.Next() {
		got = append(got, string(keys.UserKey(m.Key()))+"="+string(m.Value()))
	}
	want := []string{"a=1", "b=2", "c=3", "d=4", "e=5"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merge = %v", got)
	}
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
}

func TestMergeIterVersionOrder(t *testing.T) {
	// Same user key at different timestamps across children: newest first.
	a := newSliceIter(map[string]string{"k": "new"}, func(string) uint64 { return 20 })
	b := newSliceIter(map[string]string{"k": "old"}, func(string) uint64 { return 10 })
	m := NewMergeIter([]iterator.Iterator{b, a}) // order of children irrelevant for distinct ts
	m.First()
	if !m.Valid() || keys.Timestamp(m.Key()) != 20 {
		t.Fatalf("first entry ts = %d", keys.Timestamp(m.Key()))
	}
	m.Next()
	if !m.Valid() || keys.Timestamp(m.Key()) != 10 {
		t.Fatal("older version lost")
	}
}

func TestMergeIterSeek(t *testing.T) {
	a := newSliceIter(map[string]string{"a": "1", "m": "2", "z": "3"}, func(string) uint64 { return 5 })
	b := newSliceIter(map[string]string{"c": "4", "p": "5"}, func(string) uint64 { return 5 })
	m := NewMergeIter([]iterator.Iterator{a, b})
	m.SeekGE(keys.SeekKey([]byte("n"), keys.MaxTimestamp))
	if !m.Valid() || string(keys.UserKey(m.Key())) != "p" {
		t.Fatalf("SeekGE(n) landed on %s", m.Key())
	}
}

func TestMergeIterEmpty(t *testing.T) {
	m := NewMergeIter(nil)
	m.First()
	if m.Valid() {
		t.Fatal("empty merge valid")
	}
}

func setupSet(t *testing.T) (*storage.MemFS, *version.Set, *Compactor) {
	t.Helper()
	fs := storage.NewMemFS()
	set, err := version.Open(fs, nil, version.Options{
		BaseLevelBytes: 64 << 10, TableFileSize: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs, set, NewCompactor(fs, set)
}

func TestFlushMemtable(t *testing.T) {
	_, set, c := setupSet(t)
	defer set.Close()
	mt := memtable.New(1)
	defer mt.Unref()
	for i := 0; i < 1000; i++ {
		mt.Add([]byte(fmt.Sprintf("k%04d", i)), uint64(i+1), keys.KindValue, []byte(fmt.Sprintf("v%d", i)))
	}
	edit, stats, err := c.FlushMemtable(mt, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EntriesIn != 1000 || stats.EntriesOut != 1000 || stats.Outputs == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if err := set.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	v := set.Current()
	defer v.Unref()
	val, _, _, found, err := v.Get(keys.SeekKey([]byte("k0500"), keys.MaxTimestamp))
	if err != nil || !found || string(val) != "v500" {
		t.Fatalf("flushed Get = %q,%v,%v", val, found, err)
	}
}

// Shadowed versions below the horizon are dropped during flush; versions a
// snapshot can still see are kept.
func TestFlushDropsShadowedVersions(t *testing.T) {
	_, set, c := setupSet(t)
	defer set.Close()
	mt := memtable.New(1)
	defer mt.Unref()
	// Key with versions at ts 10, 20, 30.
	for _, ts := range []uint64{10, 20, 30} {
		mt.Add([]byte("k"), ts, keys.KindValue, []byte(fmt.Sprintf("v%d", ts)))
	}
	// Horizon 25: version 30 is the newest (kept); 20 is the newest <= 25
	// (kept for a snapshot at 25); 10 is shadowed by 20 (dropped).
	edit, stats, err := c.FlushMemtable(mt, 25)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EntriesDrop != 1 || stats.EntriesOut != 2 {
		t.Fatalf("stats = %+v (want drop=1 out=2)", stats)
	}
	if err := set.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	v := set.Current()
	defer v.Unref()
	val, _, _, found, _ := v.Get(keys.SeekKey([]byte("k"), 25))
	if !found || string(val) != "v20" {
		t.Fatalf("snapshot-visible version lost: %q,%v", val, found)
	}
	val, _, _, found, _ = v.Get(keys.SeekKey([]byte("k"), keys.MaxTimestamp))
	if !found || string(val) != "v30" {
		t.Fatalf("newest version = %q,%v", val, found)
	}
}

func TestCompactionMergesLevels(t *testing.T) {
	_, set, c := setupSet(t)
	defer set.Close()
	// Two L0 memtable flushes with overlapping keys, newer shadowing older.
	for round, ts := range []uint64{10, 20} {
		mt := memtable.New(uint64(round))
		for i := 0; i < 500; i++ {
			mt.Add([]byte(fmt.Sprintf("k%04d", i)), ts+uint64(i)%5, keys.KindValue,
				[]byte(fmt.Sprintf("r%d-%d", round, i)))
		}
		edit, _, err := c.FlushMemtable(mt, 0) // horizon 0: keep everything
		if err != nil {
			t.Fatal(err)
		}
		if err := set.LogAndApply(edit); err != nil {
			t.Fatal(err)
		}
		mt.Unref()
	}
	comp := set.PickForcedCompaction(0)
	if comp == nil {
		t.Fatal("no forced compaction for non-empty L0")
	}
	edit, stats, err := c.Run(comp, 100) // horizon above all: drop shadowed
	comp.Release()
	if err != nil {
		t.Fatal(err)
	}
	if stats.EntriesIn != 1000 || stats.EntriesDrop != 500 {
		t.Fatalf("stats = %+v (want in=1000 drop=500)", stats)
	}
	if err := set.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	v := set.Current()
	defer v.Unref()
	if len(v.Levels[0]) != 0 {
		t.Fatalf("L0 still has %d files", len(v.Levels[0]))
	}
	val, _, _, found, _ := v.Get(keys.SeekKey([]byte("k0007"), keys.MaxTimestamp))
	if !found || string(val) != "r1-7" {
		t.Fatalf("post-compaction Get = %q,%v", val, found)
	}
}

// Tombstones are dropped only at the bottom of the key's range.
func TestTombstoneElision(t *testing.T) {
	_, set, c := setupSet(t)
	defer set.Close()
	// L0 file: value then tombstone for "k".
	mt := memtable.New(1)
	mt.Add([]byte("k"), 10, keys.KindValue, []byte("v"))
	mt.Add([]byte("k"), 20, keys.KindDelete, nil)
	edit, _, err := c.FlushMemtable(mt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	mt.Unref()

	comp := set.PickForcedCompaction(0)
	edit, stats, err := c.Run(comp, 100)
	comp.Release()
	if err != nil {
		t.Fatal(err)
	}
	// Both the shadowed value and the now-useless tombstone disappear
	// (nothing below L1 holds the key).
	if stats.EntriesDrop != 2 || stats.EntriesOut != 0 {
		t.Fatalf("stats = %+v (want both entries dropped)", stats)
	}
	if err := set.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	v := set.Current()
	defer v.Unref()
	if _, _, _, found, _ := v.Get(keys.SeekKey([]byte("k"), keys.MaxTimestamp)); found {
		t.Fatal("deleted key visible after compaction")
	}
}

// A tombstone must be KEPT when deeper levels still hold the key.
func TestTombstoneKeptWhenBaseHoldsKey(t *testing.T) {
	fs, set, c := setupSet(t)
	_ = fs
	defer set.Close()
	// Deep value at L3.
	mtDeep := memtable.New(1)
	mtDeep.Add([]byte("k"), 5, keys.KindValue, []byte("deep"))
	deepEdit, _, err := c.FlushMemtable(mtDeep, 0)
	if err != nil {
		t.Fatal(err)
	}
	mtDeep.Unref()
	// Move the flushed file to L3 manually.
	mv := &version.Edit{}
	for _, a := range deepEdit.Added {
		mv.AddFile(3, a.Meta)
	}
	if err := set.LogAndApply(mv); err != nil {
		t.Fatal(err)
	}

	// Tombstone at L0.
	mtTomb := memtable.New(2)
	mtTomb.Add([]byte("k"), 20, keys.KindDelete, nil)
	tombEdit, _, err := c.FlushMemtable(mtTomb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.LogAndApply(tombEdit); err != nil {
		t.Fatal(err)
	}
	mtTomb.Unref()

	comp := set.PickForcedCompaction(0) // L0 -> L1; L3 still holds "k"
	edit, stats, err := c.Run(comp, 100)
	comp.Release()
	if err != nil {
		t.Fatal(err)
	}
	if stats.EntriesDrop != 0 || stats.EntriesOut != 1 {
		t.Fatalf("tombstone wrongly elided: %+v", stats)
	}
	if err := set.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	v := set.Current()
	defer v.Unref()
	_, _, kind, found, _ := v.Get(keys.SeekKey([]byte("k"), keys.MaxTimestamp))
	if !found || kind != keys.KindDelete {
		t.Fatalf("tombstone lost: kind=%v found=%v — deep value would resurrect", kind, found)
	}
}

func TestTrivialMove(t *testing.T) {
	_, set, c := setupSet(t)
	defer set.Close()
	mt := memtable.New(1)
	for i := 0; i < 100; i++ {
		mt.Add([]byte(fmt.Sprintf("k%03d", i)), uint64(i+1), keys.KindValue, []byte("v"))
	}
	edit, _, err := c.FlushMemtable(mt, 0)
	if err != nil {
		t.Fatal(err)
	}
	mt.Unref()
	// Install at L1 (no L2 overlap -> trivial move candidate).
	mv := &version.Edit{}
	for _, a := range edit.Added {
		mv.AddFile(1, a.Meta)
	}
	if err := set.LogAndApply(mv); err != nil {
		t.Fatal(err)
	}
	comp := set.PickForcedCompaction(1)
	if comp == nil {
		t.Fatal("no compaction")
	}
	if len(comp.Inputs[0]) == 1 && len(comp.Inputs[1]) == 0 && !comp.TrivialMove() {
		t.Fatal("trivial move not detected")
	}
	edit2, stats, err := c.Run(comp, 1000)
	comp.Release()
	if err != nil {
		t.Fatal(err)
	}
	if stats.EntriesIn != 0 {
		t.Fatalf("trivial move rewrote data: %+v", stats)
	}
	if err := set.LogAndApply(edit2); err != nil {
		t.Fatal(err)
	}
	v := set.Current()
	defer v.Unref()
	if len(v.Levels[1]) != 0 || len(v.Levels[2]) != 1 {
		t.Fatalf("levels after move: L1=%d L2=%d", len(v.Levels[1]), len(v.Levels[2]))
	}
	// Data still readable through the moved file.
	if _, _, _, found, _ := v.Get(keys.SeekKey([]byte("k050"), keys.MaxTimestamp)); !found {
		t.Fatal("data lost by trivial move")
	}
}

// Output files must split only at user-key boundaries so deeper levels stay
// disjoint in user-key space.
func TestOutputSplitRespectsUserKeys(t *testing.T) {
	_, set, c := setupSet(t)
	defer set.Close()
	mt := memtable.New(1)
	// One very hot key with many versions larger than TableFileSize in
	// total, plus neighbors.
	big := make([]byte, 1024)
	for ts := uint64(1); ts <= 20; ts++ {
		mt.Add([]byte("hot"), ts, keys.KindValue, big)
	}
	mt.Add([]byte("aaa"), 1, keys.KindValue, []byte("x"))
	mt.Add([]byte("zzz"), 1, keys.KindValue, []byte("y"))
	edit, _, err := c.FlushMemtable(mt, 0) // keep all versions
	if err != nil {
		t.Fatal(err)
	}
	mt.Unref()
	// Verify: no two output files share a user key boundary.
	type rng struct{ lo, hi string }
	var ranges []rng
	for _, a := range edit.Added {
		ranges = append(ranges, rng{
			string(keys.UserKey(a.Meta.Smallest)),
			string(keys.UserKey(a.Meta.Largest)),
		})
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].lo < ranges[j].lo })
	for i := 1; i < len(ranges); i++ {
		if ranges[i].lo <= ranges[i-1].hi {
			t.Fatalf("user key straddles output files: %v", ranges)
		}
	}
}
