// Package compaction implements the merge procedure of the LSM-DS: the
// k-way merging iterator, memtable flushes into L0 tables, and level
// compactions with snapshot-aware garbage collection of obsolete versions
// (§3.2.1 of the paper).
package compaction

import (
	"container/heap"

	"clsm/internal/iterator"
	"clsm/internal/keys"
)

// MergeIter performs a k-way merge over child iterators, yielding entries
// in internal-key order. Ties on identical internal keys (which only arise
// across components during scans, never within a compaction's inputs) are
// broken toward the lower-index child, so callers list newer components
// first.
//
// The iterator is bidirectional when every child implements
// iterator.Bidirectional (true for memtable, table, and level iterators;
// compaction-only concatenating iterators merge strictly forward and never
// see Prev/Last).
type MergeIter struct {
	children []iterator.Iterator
	h        mergeHeap
	err      error
	reversed bool
}

// NewMergeIter builds a merging iterator; children must be listed from the
// newest component to the oldest.
func NewMergeIter(children []iterator.Iterator) *MergeIter {
	return &MergeIter{children: children}
}

type mergeItem struct {
	it  iterator.Iterator
	idx int
}

type mergeHeap struct {
	items   []mergeItem
	reverse bool
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	c := keys.Compare(h.items[i].it.Key(), h.items[j].it.Key())
	if c != 0 {
		if h.reverse {
			return c > 0
		}
		return c < 0
	}
	return h.items[i].idx < h.items[j].idx
}
func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) {
	h.items = append(h.items, x.(mergeItem))
}
func (h *mergeHeap) Pop() interface{} {
	n := len(h.items)
	x := h.items[n-1]
	h.items = h.items[:n-1]
	return x
}

func (m *MergeIter) rebuild(reverse bool) {
	m.reversed = reverse
	m.h.reverse = reverse
	m.h.items = m.h.items[:0]
	for i, it := range m.children {
		if err := it.Err(); err != nil {
			m.err = err
			return
		}
		if it.Valid() {
			m.h.items = append(m.h.items, mergeItem{it: it, idx: i})
		}
	}
	heap.Init(&m.h)
}

// First positions every child at its start.
func (m *MergeIter) First() {
	for _, it := range m.children {
		it.First()
	}
	m.rebuild(false)
}

// Last positions every child at its end; iteration proceeds backward.
func (m *MergeIter) Last() {
	for _, it := range m.children {
		it.(iterator.Bidirectional).Last()
	}
	m.rebuild(true)
}

// SeekGE positions every child at ikey; iteration proceeds forward.
func (m *MergeIter) SeekGE(ikey []byte) {
	for _, it := range m.children {
		it.SeekGE(ikey)
	}
	m.rebuild(false)
}

// Next advances to the successor entry, reversing direction if needed.
func (m *MergeIter) Next() {
	if m.err != nil || len(m.h.items) == 0 {
		return
	}
	if m.reversed {
		// Direction switch: every child must end up strictly after the
		// current key; the winning child simply steps forward.
		key := append([]byte(nil), m.Key()...)
		cur := m.h.items[0].it
		for _, child := range m.children {
			if child == cur {
				continue
			}
			child.SeekGE(key)
			if child.Valid() && keys.Compare(child.Key(), key) == 0 {
				child.Next()
			}
		}
		cur.Next()
		m.rebuild(false)
		return
	}
	top := m.h.items[0].it
	top.Next()
	m.fixTop(top)
}

// Prev steps to the predecessor entry, reversing direction if needed.
func (m *MergeIter) Prev() {
	if m.err != nil || len(m.h.items) == 0 {
		return
	}
	if !m.reversed {
		// Direction switch: every child must end up strictly before the
		// current key.
		key := append([]byte(nil), m.Key()...)
		cur := m.h.items[0].it
		for _, child := range m.children {
			b := child.(iterator.Bidirectional)
			if child == cur {
				b.Prev()
				continue
			}
			b.SeekGE(key)
			if child.Valid() {
				b.Prev() // now strictly before key
			} else {
				b.Last() // everything sorts before key
			}
		}
		m.rebuild(true)
		return
	}
	top := m.h.items[0].it
	top.(iterator.Bidirectional).Prev()
	m.fixTop(top)
}

// fixTop restores the heap after the winning child moved.
func (m *MergeIter) fixTop(top iterator.Iterator) {
	if err := top.Err(); err != nil {
		m.err = err
		return
	}
	if top.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}

// Valid reports whether an entry is available.
func (m *MergeIter) Valid() bool { return m.err == nil && len(m.h.items) > 0 }

// Key returns the current winning internal key.
func (m *MergeIter) Key() []byte { return m.h.items[0].it.Key() }

// Value returns the value paired with Key.
func (m *MergeIter) Value() []byte { return m.h.items[0].it.Value() }

// Err returns the first child error.
func (m *MergeIter) Err() error {
	if m.err != nil {
		return m.err
	}
	for _, it := range m.children {
		if err := it.Err(); err != nil {
			return err
		}
	}
	return nil
}
