package compaction

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"clsm/internal/faultfs"
	"clsm/internal/keys"
	"clsm/internal/memtable"
	"clsm/internal/obs"
	"clsm/internal/storage"
	"clsm/internal/version"
)

// TestDegradedFlushCleansOutputs: a merge that dies partway through its
// output set must delete everything it created — the finished tables and
// the in-progress one — and account the reclaimed bytes, so a retrying
// degraded engine does not leak one table set per attempt.
func TestDegradedFlushCleansOutputs(t *testing.T) {
	ffs := faultfs.Wrap(storage.NewMemFS())
	set, err := version.Open(ffs, nil, version.Options{
		BaseLevelBytes: 64 << 10, TableFileSize: 4 << 10, BlockSize: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	c := NewCompactor(ffs, set)
	o := obs.New()
	c.SetObserver(o)

	mt := memtable.New(1)
	defer mt.Unref()
	for i := 0; i < 2000; i++ {
		mt.Add([]byte(fmt.Sprintf("k%05d", i)), uint64(i+1), keys.KindValue,
			[]byte(fmt.Sprintf("value-%05d", i)))
	}

	// ~40 KB of entries across 4 KB tables is several outputs; the 12th
	// sstable write lands mid-set, after at least one table has finished.
	ffs.Arm(faultfs.Rule{Op: faultfs.OpWrite, Pattern: "*.sst", N: 12, Kind: faultfs.FaultErr})
	_, stats, err := c.FlushMemtable(mt, 3000)
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("FlushMemtable err = %v, want the injected fault", err)
	}
	if len(stats.OutputFiles) != 0 {
		t.Errorf("stats still lists %d outputs after cleanup", len(stats.OutputFiles))
	}

	names, err := ffs.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".sst") {
			t.Errorf("orphan output %s survived the failed merge", n)
		}
	}
	if o.BGBytesReclaimed.Load() == 0 {
		t.Error("no reclaimed bytes accounted for the deleted outputs")
	}
}

// TestDiscardOutputsSparesForeignFiles: Discard after a failed edit install
// must delete only the files this attempt created — a trivially moved input
// listed in the same edit is live data and must survive.
func TestDiscardOutputsSparesForeignFiles(t *testing.T) {
	fs, set, c := setupSet(t)
	defer set.Close()

	mt := memtable.New(1)
	defer mt.Unref()
	for i := 0; i < 100; i++ {
		mt.Add([]byte(fmt.Sprintf("k%03d", i)), uint64(i+1), keys.KindValue, []byte("v"))
	}
	edit, stats, err := c.FlushMemtable(mt, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.OutputFiles) == 0 {
		t.Fatal("flush produced no outputs")
	}
	// Graft a foreign AddFile (as a trivial move would) into the edit.
	foreign := version.FileDesc{Num: 999999, Size: 1 << 30}
	edit.AddFile(1, foreign)
	var created uint64
	for _, a := range edit.Added {
		if a.Meta.Num != foreign.Num {
			created += a.Meta.Size
		}
	}

	reclaimed := c.DiscardOutputs(edit, &stats)
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".sst") {
			t.Errorf("created output %s survived DiscardOutputs", n)
		}
	}
	// Reclaimed accounting covering exactly the created outputs proves the
	// foreign file was never treated as this attempt's garbage.
	if reclaimed != created {
		t.Errorf("reclaimed %d bytes, want exactly the created outputs (%d)", reclaimed, created)
	}
	if stats.Outputs != 0 || len(stats.OutputFiles) != 0 {
		t.Errorf("stats not reset: %+v", stats)
	}
}
