package compaction

import (
	"bytes"
	"fmt"

	"clsm/internal/iterator"
	"clsm/internal/keys"
	"clsm/internal/memtable"
	"clsm/internal/obs"
	"clsm/internal/sstable"
	"clsm/internal/storage"
	"clsm/internal/version"
	"clsm/internal/vlog"
)

// Compactor executes merges: memtable flushes and level compactions. It is
// deliberately independent of the engine's concurrency control — the paper
// treats the merge procedure as a pluggable building block bracketed by the
// beforeMerge/afterMerge hooks.
type Compactor struct {
	fs  storage.FS
	set *version.Set
	obs *obs.Observer
}

// NewCompactor wires a compactor to the filesystem and version set.
func NewCompactor(fs storage.FS, set *version.Set) *Compactor {
	return &Compactor{fs: fs, set: set}
}

// SetObserver wires merge counters (tables written, entries dropped) to
// the engine's observer. Call before background work starts.
func (c *Compactor) SetObserver(o *obs.Observer) { c.obs = o }

// Stats summarizes one merge execution.
type Stats struct {
	EntriesIn    int
	EntriesOut   int
	EntriesDrop  int
	BytesWritten uint64
	Outputs      int
	// OutputFiles lists the table files this attempt created (finished
	// outputs only; trivial moves create nothing). The engine uses it to
	// discard the attempt's outputs when installing the edit fails.
	OutputFiles []uint64
}

// FlushMemtable writes the frozen memtable to one or more L0 tables and
// returns the edit installing them. dropBelow is the timestamp returned by
// beforeMerge: versions shadowed by a newer version at or below it are
// obsolete for every snapshot and are garbage-collected during the merge.
func (c *Compactor) FlushMemtable(mt *memtable.Table, dropBelow uint64) (*version.Edit, Stats, error) {
	it := mt.NewIterator()
	edit := &version.Edit{}
	stats, err := c.writeOutputs(it, edit, 0, dropBelow, nil)
	if err != nil {
		return nil, stats, err
	}
	return edit, stats, nil
}

// Run executes a level compaction and returns the edit that installs the
// outputs and retires the inputs. dropBelow has the same meaning as in
// FlushMemtable and must be obtained under the engine's exclusive lock.
func (c *Compactor) Run(comp *version.Compaction, dropBelow uint64) (*version.Edit, Stats, error) {
	edit := &version.Edit{}
	for side, files := range comp.Inputs {
		for _, f := range files {
			edit.DeleteFile(comp.Level+side, f.Num)
		}
	}

	if comp.TrivialMove() {
		f := comp.Inputs[0][0]
		edit.AddFile(comp.Level+1, f.FileDesc)
		return edit, Stats{Outputs: 1}, nil
	}

	var children []iterator.Iterator
	if comp.Level == 0 {
		// L0 files overlap: one iterator each, newest first.
		for _, f := range comp.Inputs[0] {
			r, err := c.set.Tables().Get(f.Num)
			if err != nil {
				return nil, Stats{}, err
			}
			children = append(children, r.NewIterator())
		}
	} else {
		children = append(children, newConcatIter(c.set, comp.Inputs[0]))
	}
	if len(comp.Inputs[1]) > 0 {
		children = append(children, newConcatIter(c.set, comp.Inputs[1]))
	}

	merged := NewMergeIter(children)
	isBase := comp.IsBaseLevelForKey
	stats, err := c.writeOutputs(merged, edit, comp.Level+1, dropBelow, isBase)
	if err != nil {
		return nil, stats, err
	}
	return edit, stats, nil
}

// writeOutputs drains it into output tables at outLevel, applying the
// version GC policy:
//
//  1. an entry is dropped when a newer entry of the same user key exists
//     with timestamp <= dropBelow (no snapshot or future read can see it);
//  2. a deletion marker is dropped when additionally no deeper level holds
//     the key (isBase).
func (c *Compactor) writeOutputs(it iterator.Iterator, edit *version.Edit, outLevel int, dropBelow uint64, isBase func([]byte) bool) (Stats, error) {
	var stats Stats
	var w *sstable.Writer
	var fileNum uint64
	opts := c.set.Options()

	var lastUK []byte
	haveLast := false
	var newerTS uint64 // timestamp of the previous (newer) entry for lastUK

	// Dropped pointer entries turn their value-log bytes into garbage; the
	// per-segment byte counts ride the edit as garbage-delta records, the
	// input signal of value-log GC candidate selection.
	var vlogGarbage map[uint64]uint64

	// fail is every error exit: it deletes the attempt's partial outputs
	// (the in-progress table and every finished one) right now, not at the
	// next Open, so a retrying degraded engine does not leak an sstable
	// per attempt. The edit is discarded by the caller.
	fail := func(err error) (Stats, error) {
		var reclaimed uint64
		if w != nil {
			reclaimed += w.EstimatedSize()
			w.Abandon()
			c.fs.Remove(version.TableFileName(fileNum))
			w = nil
		}
		reclaimed += c.DiscardOutputs(edit, &stats)
		if c.obs != nil && reclaimed > 0 {
			c.obs.BGBytesReclaimed.Add(reclaimed)
		}
		return stats, err
	}

	finish := func() error {
		if w == nil {
			return nil
		}
		meta, err := w.Finish()
		if err != nil {
			return err
		}
		stats.BytesWritten += meta.Size
		stats.Outputs++
		stats.OutputFiles = append(stats.OutputFiles, fileNum)
		edit.AddFile(outLevel, version.FileDesc{
			Num:      fileNum,
			Size:     meta.Size,
			Entries:  meta.Entries,
			Smallest: meta.Smallest,
			Largest:  meta.Largest,
		})
		w = nil
		return nil
	}

	it.First()
	for ; it.Valid(); it.Next() {
		ik := it.Key()
		uk, ts, kind, ok := keys.Decode(ik)
		if !ok {
			return fail(fmt.Errorf("compaction: corrupt internal key %x", ik))
		}
		stats.EntriesIn++

		sameKey := haveLast && bytes.Equal(uk, lastUK)
		drop := false
		if sameKey && newerTS <= dropBelow {
			// A newer version at or below every live snapshot shadows this
			// one for all observers.
			drop = true
		} else if kind == keys.KindDelete && ts <= dropBelow && isBase != nil && isBase(uk) {
			// The tombstone itself is visible everywhere and nothing older
			// can exist below: it has done its job.
			drop = true
		}
		if !sameKey {
			lastUK = append(lastUK[:0], uk...)
			haveLast = true
		}
		newerTS = ts

		if drop {
			stats.EntriesDrop++
			if kind == keys.KindValuePtr {
				if p, ok := vlog.DecodePointer(it.Value()); ok {
					if vlogGarbage == nil {
						vlogGarbage = make(map[uint64]uint64)
					}
					vlogGarbage[p.Seg] += uint64(p.Len)
				}
			}
			continue
		}

		// Output files may only split at user-key boundaries so deeper
		// levels stay disjoint in user-key space.
		if w != nil && w.EstimatedSize() >= uint64(opts.TableFileSize) && !sameKey {
			if err := finish(); err != nil {
				return fail(err)
			}
		}
		if w == nil {
			fileNum = c.set.NewFileNum()
			f, err := c.fs.Create(version.TableFileName(fileNum))
			if err != nil {
				return fail(err)
			}
			comp := sstable.NoCompression
			if opts.Compress {
				comp = sstable.FlateCompression
			}
			w = sstable.NewWriter(f, sstable.WriterOptions{
				BlockSize:       opts.BlockSize,
				BloomBitsPerKey: opts.BloomBitsPerKey,
				Compression:     comp,
			})
		}
		if err := w.Add(ik, it.Value()); err != nil {
			return fail(err)
		}
		stats.EntriesOut++
	}
	if err := it.Err(); err != nil {
		return fail(err)
	}
	if err := finish(); err != nil {
		return fail(err)
	}
	for seg, garbage := range vlogGarbage {
		edit.AddVlogGarbage(seg, garbage)
	}
	if c.obs != nil {
		c.obs.CompactionTables.Add(uint64(stats.Outputs))
		c.obs.CompactionDropped.Add(uint64(stats.EntriesDrop))
	}
	return stats, nil
}

// DiscardOutputs deletes the output tables a failed merge attempt created
// (per stats.OutputFiles — never inputs or trivially moved files, which the
// attempt did not create) and returns the bytes reclaimed. It must only run
// before the edit has been offered to the version set: once LogAndApply has
// appended the edit, a crash can make that record durable and recovery
// would need the files. Stats is reset so a retried attempt starts from a
// clean slate.
func (c *Compactor) DiscardOutputs(edit *version.Edit, stats *Stats) uint64 {
	var reclaimed uint64
	created := make(map[uint64]bool, len(stats.OutputFiles))
	for _, num := range stats.OutputFiles {
		created[num] = true
	}
	for _, a := range edit.Added {
		if created[a.Meta.Num] {
			c.fs.Remove(version.TableFileName(a.Meta.Num))
			reclaimed += a.Meta.Size
		}
	}
	stats.OutputFiles = nil
	stats.Outputs = 0
	return reclaimed
}

// concatIter wraps the version package's disjoint-level concatenation for
// an explicit file list.
type concatIter struct {
	files []*version.FileMeta
	set   *version.Set
	idx   int
	cur   iterator.Iterator
	err   error
}

func newConcatIter(set *version.Set, files []*version.FileMeta) iterator.Iterator {
	return &concatIter{set: set, files: files, idx: -1}
}

func (it *concatIter) open(i int) {
	it.idx = i
	it.cur = nil
	if i < 0 || i >= len(it.files) {
		return
	}
	r, err := it.set.Tables().Get(it.files[i].Num)
	if err != nil {
		it.err = err
		return
	}
	it.cur = r.NewIterator()
}

func (it *concatIter) First() {
	if len(it.files) == 0 {
		return
	}
	it.open(0)
	if it.cur != nil {
		it.cur.First()
		it.skipForward()
	}
}

func (it *concatIter) SeekGE(ikey []byte) {
	i := 0
	for i < len(it.files) && keys.Compare(it.files[i].Largest, ikey) < 0 {
		i++
	}
	if i >= len(it.files) {
		it.cur = nil
		it.idx = len(it.files)
		return
	}
	it.open(i)
	if it.cur != nil {
		it.cur.SeekGE(ikey)
		it.skipForward()
	}
}

func (it *concatIter) Next() {
	if it.cur == nil {
		return
	}
	it.cur.Next()
	it.skipForward()
}

func (it *concatIter) skipForward() {
	for it.err == nil && it.cur != nil && !it.cur.Valid() {
		if err := it.cur.Err(); err != nil {
			it.err = err
			it.cur = nil
			return
		}
		if it.idx+1 >= len(it.files) {
			it.cur = nil
			return
		}
		it.open(it.idx + 1)
		if it.cur != nil {
			it.cur.First()
		}
	}
}

func (it *concatIter) Valid() bool   { return it.err == nil && it.cur != nil && it.cur.Valid() }
func (it *concatIter) Key() []byte   { return it.cur.Key() }
func (it *concatIter) Value() []byte { return it.cur.Value() }
func (it *concatIter) Err() error {
	if it.err != nil {
		return it.err
	}
	if it.cur != nil {
		return it.cur.Err()
	}
	return nil
}
