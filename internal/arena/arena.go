// Package arena provides a non-blocking append-only byte allocator.
//
// It models the lock-free memory allocator the paper's implementation uses
// for skip-list nodes (Michael, "Scalable lock-free dynamic memory
// allocation"). Allocation is a single atomic add on the current chunk;
// when a chunk fills up, the allocating goroutine installs a fresh chunk
// with a CAS. Memory is never freed individually — the whole arena is
// released when the owning memtable is discarded after a merge, exactly
// like the paper's per-component lifetime.
package arena

import (
	"sync/atomic"
)

const (
	// DefaultChunkSize is the allocation granularity of a fresh arena.
	DefaultChunkSize = 1 << 20
	// maxAlloc keeps single allocations within one chunk.
	maxAlloc = DefaultChunkSize / 2
)

type chunk struct {
	buf []byte
	off atomic.Int64
}

// Arena is a lock-free bump allocator. The zero value is not usable; call
// New.
type Arena struct {
	cur       atomic.Pointer[chunk]
	allocated atomic.Int64 // total bytes handed out (size accounting)
	reserved  atomic.Int64 // total bytes of chunks allocated
	chunkSize int64
}

// New returns an empty arena with the given chunk size (DefaultChunkSize if
// size <= 0).
func New(size int) *Arena {
	if size <= 0 {
		size = DefaultChunkSize
	}
	a := &Arena{chunkSize: int64(size)}
	a.cur.Store(&chunk{buf: make([]byte, size)})
	a.reserved.Store(int64(size))
	return a
}

// Alloc returns a zeroed byte slice of length n carved from the arena. Large
// requests (bigger than half a chunk) get a dedicated allocation so they do
// not poison chunk utilization.
func (a *Arena) Alloc(n int) []byte {
	if n == 0 {
		return nil
	}
	if int64(n) > min64(maxAlloc, a.chunkSize/2) {
		a.allocated.Add(int64(n))
		a.reserved.Add(int64(n))
		return make([]byte, n)
	}
	for {
		c := a.cur.Load()
		end := c.off.Add(int64(n))
		if end <= int64(len(c.buf)) {
			a.allocated.Add(int64(n))
			return c.buf[end-int64(n) : end : end]
		}
		// Chunk exhausted: install a fresh one. Losing the CAS just means
		// another goroutine already installed it; retry on that chunk.
		nc := &chunk{buf: make([]byte, a.chunkSize)}
		if a.cur.CompareAndSwap(c, nc) {
			a.reserved.Add(a.chunkSize)
		}
	}
}

// Append copies b into the arena and returns the stable copy.
func (a *Arena) Append(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	dst := a.Alloc(len(b))
	copy(dst, b)
	return dst
}

// Allocated reports the bytes handed out so far. Memtables use this as the
// spill-threshold metric.
func (a *Arena) Allocated() int64 { return a.allocated.Load() }

// Reserved reports the bytes of backing memory held by the arena.
func (a *Arena) Reserved() int64 { return a.reserved.Load() }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
