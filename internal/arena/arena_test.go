package arena

import (
	"sync"
	"testing"
)

func TestAllocBasic(t *testing.T) {
	a := New(1024)
	b1 := a.Alloc(10)
	if len(b1) != 10 {
		t.Fatalf("len = %d", len(b1))
	}
	for _, x := range b1 {
		if x != 0 {
			t.Fatal("allocation not zeroed")
		}
	}
	if a.Allocated() != 10 {
		t.Errorf("Allocated = %d", a.Allocated())
	}
}

func TestAllocZero(t *testing.T) {
	a := New(0)
	if b := a.Alloc(0); b != nil {
		t.Errorf("Alloc(0) = %v, want nil", b)
	}
}

func TestAppendCopies(t *testing.T) {
	a := New(0)
	src := []byte("hello")
	cp := a.Append(src)
	src[0] = 'X'
	if string(cp) != "hello" {
		t.Errorf("arena copy aliased source: %q", cp)
	}
}

func TestChunkRollover(t *testing.T) {
	a := New(256)
	var slices [][]byte
	for i := 0; i < 100; i++ {
		b := a.Alloc(100)
		for j := range b {
			b[j] = byte(i)
		}
		slices = append(slices, b)
	}
	for i, b := range slices {
		for _, x := range b {
			if x != byte(i) {
				t.Fatalf("allocation %d was overwritten", i)
			}
		}
	}
	if a.Reserved() < a.Allocated() {
		t.Errorf("Reserved %d < Allocated %d", a.Reserved(), a.Allocated())
	}
}

func TestLargeAlloc(t *testing.T) {
	a := New(1024)
	b := a.Alloc(10_000) // bigger than a chunk: dedicated allocation
	if len(b) != 10_000 {
		t.Fatalf("len = %d", len(b))
	}
}

// Concurrent allocations must never overlap.
func TestConcurrentAllocDisjoint(t *testing.T) {
	a := New(4096)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	out := make([][][]byte, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				b := a.Alloc(16)
				for j := range b {
					b[j] = byte(w + 1)
				}
				out[w] = append(out[w], b)
			}
		}(w)
	}
	wg.Wait()
	for w := range out {
		for i, b := range out[w] {
			for _, x := range b {
				if x != byte(w+1) {
					t.Fatalf("worker %d alloc %d overlaps another allocation", w, i)
				}
			}
		}
	}
	want := int64(workers * perWorker * 16)
	if a.Allocated() != want {
		t.Errorf("Allocated = %d, want %d", a.Allocated(), want)
	}
}
