package wal

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"clsm/internal/obs"
	"clsm/internal/storage"
)

// ErrLoggerClosed is returned by Append/Flush after Close has drained the
// logger.
var ErrLoggerClosed = errors.New("wal: logger closed")

// groupFlushBytes bounds how many framed bytes a commit group accumulates
// before the drain pushes them to the file mid-group. It only splits the
// physical writes, never the group's single Sync.
const groupFlushBytes = 1 << 20

// maxAsyncBacklog bounds the in-flight async queue. Past it, producers
// yield to the drain rather than enqueueing ever deeper: that caps queue
// memory when writers outrun the device, and it lets the drain recycle
// requests back into the pools, which keeps the enqueue path
// allocation-free even for a producer in a tight loop.
const maxAsyncBacklog = 1024

// Logger is the engine-facing logging front end. Writers enqueue records on
// a lock-free list and return immediately (asynchronous logging, the
// LevelDB/cLSM default); a dedicated goroutine group-commits the backlog:
// on each wakeup it grabs *everything* enqueued, frames it into one
// buffered write, issues at most one Sync for the whole group, and then
// completes every waiter at once. Sync-mode throughput is therefore
// O(groups) device syncs rather than O(records) — the write-group /
// pipelined-WAL design of LevelDB and RocksDB, adapted to cLSM's
// lock-free enqueue.
//
// Enqueue order is the durability order; since cLSM stamps every entry with
// its timestamp, cross-record ordering does not matter for recovery.
//
// The hot path is allocation-free in steady state: requests, record
// buffers, and completion channels are all pool-recycled, and ownership of
// an AppendOwned buffer transfers to the logger, which releases it after
// the group is written.
type Logger struct {
	w *Writer

	// head is an intrusive Treiber list of pending requests. Producers
	// push with a CAS; the single drain goroutine takes the whole backlog
	// with one Swap(nil) and reverses it to FIFO order. Push-only CAS plus
	// wholesale Swap is immune to the ABA hazard that forbids node reuse
	// in pop-one lock-free stacks, so requests can be pool-recycled.
	head atomic.Pointer[logReq]

	wake chan struct{}
	quit chan struct{}
	done chan struct{}
	sync bool

	err     atomic.Pointer[error]
	pending atomic.Int64

	// appends and syncs, when wired via Instrument, count enqueued
	// records and device syncs on the engine's observer; groupSize
	// records the number of records committed per group.
	appends, syncs *obs.Counter
	groupSize      *obs.Histogram

	// waiters is commitGroup's scratch for the group's completion
	// channels. Only the drain goroutine touches it (sweep runs after the
	// drain has exited), so reusing it across groups is race-free.
	waiters []chan error
}

// logReq is one pending logger request: a record to append, a flush
// barrier (buf == nil), or both roles combined at Close time.
type logReq struct {
	next *logReq
	buf  *[]byte    // owned record buffer, nil for flush barriers
	done chan error // non-nil for sync-mode appends and flush barriers
}

var (
	reqPool = sync.Pool{New: func() any { return new(logReq) }}
	// Fresh buffers start with room for a typical point-write record so a
	// pool miss costs one backing array, not a chain of append growths.
	bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}
	// doneChPool recycles completion channels: each is used for exactly
	// one send and one receive, so a returned channel is always empty.
	doneChPool = sync.Pool{New: func() any { return make(chan error, 1) }}
)

// GetBuf returns a pooled, empty record buffer. Encode the record into
// (*buf)[:0] and hand it to AppendOwned, which releases it back to the
// pool once the record is on disk (or on the error path).
func GetBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuf returns a buffer obtained from GetBuf that was never passed to
// AppendOwned (e.g. the engine encoded a record and then discovered the
// WAL is disabled).
func PutBuf(buf *[]byte) {
	bufPool.Put(buf)
}

// NewLogger starts the drain goroutine over a fresh log file. If syncMode
// is true every Append waits for durability.
func NewLogger(f storage.File, syncMode bool) *Logger {
	l := &Logger{
		w:    NewWriter(f, false),
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
		sync: syncMode,
	}
	go l.drain()
	return l
}

// Instrument wires append/sync counters and the group-size histogram
// (typically the owning engine's observer). Call right after NewLogger,
// before the logger is shared between writers.
func (l *Logger) Instrument(appends, syncs *obs.Counter, groupSize *obs.Histogram) {
	l.appends, l.syncs, l.groupSize = appends, syncs, groupSize
}

// Append logs one record. In async mode it only enqueues; the copy is taken
// so the caller may reuse rec.
func (l *Logger) Append(rec []byte) error {
	buf := GetBuf()
	*buf = append((*buf)[:0], rec...)
	return l.AppendOwned(buf)
}

// AppendOwned logs the record held in buf, taking ownership of the buffer
// (obtained from GetBuf); the logger releases it after the record's group
// is written, so the caller performs no copy and no allocation. In sync
// mode AppendOwned blocks until the record's group has reached the device.
func (l *Logger) AppendOwned(buf *[]byte) error {
	if e := l.err.Load(); e != nil {
		PutBuf(buf)
		return *e
	}
	var done chan error
	if l.sync {
		done = doneChPool.Get().(chan error)
	}
	r := reqPool.Get().(*logReq)
	r.buf, r.done = buf, done
	l.pending.Add(1)
	l.push(r)
	if l.appends != nil {
		l.appends.Inc()
	}
	l.notify()
	if done != nil {
		err := <-done
		doneChPool.Put(done)
		return err
	}
	if l.pending.Load() > maxAsyncBacklog {
		// Async backpressure: give the drain a chance to commit (and
		// recycle) the backlog before this producer enqueues more.
		runtime.Gosched()
	}
	return nil
}

// Flush blocks until everything enqueued before the call is on disk. A
// flush barrier forces its group's Sync even in async mode.
func (l *Logger) Flush() error {
	if e := l.err.Load(); e != nil {
		return *e
	}
	done := doneChPool.Get().(chan error)
	r := reqPool.Get().(*logReq)
	r.buf, r.done = nil, done
	l.pending.Add(1)
	l.push(r)
	l.notify()
	err := <-done
	doneChPool.Put(done)
	return err
}

// Pending returns the approximate queue depth (metrics).
func (l *Logger) Pending() int64 { return l.pending.Load() }

// Close drains outstanding records, syncs, and closes the file. Records
// that race with Close are written and synced by the final sweep before
// the file is released.
func (l *Logger) Close() error {
	flushErr := l.Flush()
	close(l.quit)
	<-l.done
	// The drain goroutine has exited; mark the logger closed so late
	// Appends fail fast instead of parking on a dead queue, then sweep
	// any request that slipped in between the drain's last Swap and now.
	errClosed := ErrLoggerClosed
	l.err.CompareAndSwap(nil, &errClosed)
	l.sweep()
	if err := l.w.Close(); err != nil {
		return err
	}
	return flushErr
}

func (l *Logger) push(r *logReq) {
	for {
		old := l.head.Load()
		r.next = old
		if l.head.CompareAndSwap(old, r) {
			return
		}
	}
}

func (l *Logger) notify() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

func (l *Logger) drain() {
	defer close(l.done)
	for {
		backlog := l.head.Swap(nil)
		if backlog == nil {
			select {
			case <-l.wake:
				continue
			case <-l.quit:
				l.sweep()
				return
			}
		}
		l.commitGroup(backlog, false)
	}
}

// sweep drains requests racing with Close: everything still enqueued is
// committed with a forced Sync (even in async mode), so no record written
// after the final Flush's sync is left without one of its own.
func (l *Logger) sweep() {
	for {
		backlog := l.head.Swap(nil)
		if backlog == nil {
			return
		}
		l.commitGroup(backlog, true)
	}
}

// commitGroup writes one grabbed backlog as a single commit group: reverse
// the push-ordered list to FIFO, frame every record into the writer's
// buffer (spilling to the file only past groupFlushBytes), push the frames
// with one write, issue at most one Sync for the whole group, and complete
// every waiter with the group's outcome. A write or sync failure fails the
// whole group and poisons the logger for subsequent appends.
func (l *Logger) commitGroup(backlog *logReq, forceSync bool) {
	// Reverse the Treiber list: push order is the linearization order, so
	// the reversed list is exact FIFO — per-producer order included.
	var first *logReq
	for r := backlog; r != nil; {
		next := r.next
		r.next = first
		first = r
		r = next
	}

	var (
		groupErr error
		records  int64
		count    int64
		flush    bool
	)
	waiters := l.waiters[:0]
	for r := first; r != nil; {
		next := r.next
		if r.buf != nil {
			if groupErr == nil {
				l.w.Queue(*r.buf)
				if l.w.Buffered() >= groupFlushBytes {
					groupErr = l.w.FlushQueued()
				}
			}
			*r.buf = (*r.buf)[:0]
			bufPool.Put(r.buf)
			records++
		} else {
			flush = true
		}
		if r.done != nil {
			waiters = append(waiters, r.done)
		}
		count++
		r.buf, r.done, r.next = nil, nil, nil
		reqPool.Put(r)
		r = next
	}

	if groupErr == nil {
		groupErr = l.w.FlushQueued()
	}
	needSync := flush || forceSync || (l.sync && records > 0)
	if groupErr == nil && needSync {
		groupErr = l.w.Sync()
		if l.syncs != nil {
			l.syncs.Inc()
		}
	}
	if groupErr != nil {
		// Wrap once with the failing subsystem so the health classifier's
		// callers see where a transient errno came from; %w keeps the
		// underlying sentinel reachable for errors.Is.
		groupErr = fmt.Errorf("wal: commit group: %w", groupErr)
		l.err.CompareAndSwap(nil, &groupErr)
	}
	if records > 0 && l.groupSize != nil {
		l.groupSize.RecordValue(uint64(records))
	}
	for i, ch := range waiters {
		ch <- groupErr
		waiters[i] = nil
	}
	l.waiters = waiters[:0]
	l.pending.Add(-count)
}
