package wal

import (
	"sync"
	"sync/atomic"

	"clsm/internal/obs"
	"clsm/internal/storage"
	"clsm/internal/syncutil"
)

// Logger is the engine-facing logging front end. Writers enqueue records on
// a lock-free queue and return immediately (asynchronous logging, the
// LevelDB/cLSM default); a dedicated goroutine drains the queue into the
// block-format Writer. In synchronous mode Append additionally waits until
// the record has reached the device.
//
// Enqueue order is the durability order; since cLSM stamps every entry with
// its timestamp, cross-record ordering does not matter for recovery.
type Logger struct {
	w     *Writer
	queue *syncutil.Queue[logReq]
	wake  chan struct{}
	quit  chan struct{}
	done  chan struct{}
	sync  bool

	mu      sync.Mutex // serializes flush waiters
	err     atomic.Pointer[error]
	pending atomic.Int64

	// appends and syncs, when wired via Instrument, count enqueued
	// records and device syncs on the engine's observer.
	appends, syncs *obs.Counter
}

type logReq struct {
	rec  []byte
	done chan error // non-nil in sync mode or for flush barriers
}

// NewLogger starts the drain goroutine over a fresh log file. If syncMode
// is true every Append waits for durability.
func NewLogger(f storage.File, syncMode bool) *Logger {
	l := &Logger{
		w:     NewWriter(f, false),
		queue: syncutil.NewQueue[logReq](),
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		sync:  syncMode,
	}
	go l.drain()
	return l
}

// Instrument wires append/sync counters (typically the owning engine's
// observer counters). Call right after NewLogger, before the logger is
// shared between writers.
func (l *Logger) Instrument(appends, syncs *obs.Counter) {
	l.appends, l.syncs = appends, syncs
}

// Append logs one record. In async mode it only enqueues; the copy is taken
// so the caller may reuse rec.
func (l *Logger) Append(rec []byte) error {
	if e := l.err.Load(); e != nil {
		return *e
	}
	cp := make([]byte, len(rec))
	copy(cp, rec)
	var done chan error
	if l.sync {
		done = make(chan error, 1)
	}
	l.pending.Add(1)
	l.queue.Enqueue(logReq{rec: cp, done: done})
	if l.appends != nil {
		l.appends.Inc()
	}
	l.notify()
	if done != nil {
		return <-done
	}
	return nil
}

// Flush blocks until everything enqueued before the call is on disk.
func (l *Logger) Flush() error {
	done := make(chan error, 1)
	l.pending.Add(1)
	l.queue.Enqueue(logReq{done: done})
	l.notify()
	return <-done
}

// Pending returns the approximate queue depth (metrics).
func (l *Logger) Pending() int64 { return l.pending.Load() }

// Close drains outstanding records, syncs, and closes the file.
func (l *Logger) Close() error {
	flushErr := l.Flush()
	close(l.quit)
	<-l.done
	if err := l.w.Close(); err != nil {
		return err
	}
	return flushErr
}

func (l *Logger) notify() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

func (l *Logger) drain() {
	defer close(l.done)
	for {
		req, ok := l.queue.Dequeue()
		if !ok {
			select {
			case <-l.wake:
				continue
			case <-l.quit:
				// Final sweep for records racing with Close.
				for {
					req, ok := l.queue.Dequeue()
					if !ok {
						return
					}
					l.handle(req)
				}
			}
		}
		l.handle(req)
	}
}

func (l *Logger) handle(req logReq) {
	var err error
	if req.rec != nil {
		err = l.w.Append(req.rec)
	}
	if req.done != nil {
		if err == nil {
			err = l.w.Sync()
			if l.syncs != nil {
				l.syncs.Inc()
			}
		}
		req.done <- err
	}
	if err != nil {
		l.err.CompareAndSwap(nil, &err)
	}
	l.pending.Add(-1)
}
