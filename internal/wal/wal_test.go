package wal

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"clsm/internal/storage"
	"clsm/internal/syncutil"
)

func writeLog(t *testing.T, fs *storage.MemFS, name string, records [][]byte) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, false)
	for _, r := range records {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, fs *storage.MemFS, name string) [][]byte {
	t.Helper()
	src, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	r := NewReader(src)
	var out [][]byte
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, append([]byte(nil), rec...))
	}
}

func TestRoundTripSmallRecords(t *testing.T) {
	fs := storage.NewMemFS()
	recs := [][]byte{[]byte("one"), []byte("two"), []byte(""), []byte("four")}
	writeLog(t, fs, "l", recs)
	got := readAll(t, fs, "l")
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestRoundTripFragmented(t *testing.T) {
	fs := storage.NewMemFS()
	big := make([]byte, 3*BlockSize+123)
	for i := range big {
		big[i] = byte(i)
	}
	recs := [][]byte{[]byte("pre"), big, []byte("post")}
	writeLog(t, fs, "l", recs)
	got := readAll(t, fs, "l")
	if len(got) != 3 || !bytes.Equal(got[1], big) {
		t.Fatalf("fragmented record corrupted (got %d records)", len(got))
	}
}

func TestBlockBoundaryPadding(t *testing.T) {
	fs := storage.NewMemFS()
	// Record sized so the next header would not fit in the block tail.
	rec1 := make([]byte, BlockSize-headerSize-3) // leaves 3 < headerSize bytes
	rec2 := []byte("after-pad")
	writeLog(t, fs, "l", [][]byte{rec1, rec2})
	got := readAll(t, fs, "l")
	if len(got) != 2 || !bytes.Equal(got[1], rec2) {
		t.Fatal("record after block padding lost")
	}
}

func TestRoundTripQuickSizes(t *testing.T) {
	fs := storage.NewMemFS()
	rng := rand.New(rand.NewSource(11))
	var recs [][]byte
	for i := 0; i < 200; i++ {
		n := rng.Intn(3 * BlockSize)
		b := make([]byte, n)
		rng.Read(b)
		recs = append(recs, b)
	}
	writeLog(t, fs, "l", recs)
	got := readAll(t, fs, "l")
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d mismatch (len %d)", i, len(recs[i]))
		}
	}
}

// A crash-truncated tail must not be treated as corruption: recovery keeps
// the intact prefix.
func TestTruncatedTail(t *testing.T) {
	fs := storage.NewMemFS()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), make([]byte, 2*BlockSize)}
	writeLog(t, fs, "l", recs)
	data, _ := fs.ReadFile("l")
	for cut := 1; cut < 40; cut += 7 {
		trunc := data[:len(data)-cut]
		fs.WriteFile("t", trunc)
		src, _ := fs.Open("t")
		r := NewReader(src)
		n := 0
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("cut %d: unexpected error %v", cut, err)
			}
			n++
		}
		if n < 2 {
			t.Errorf("cut %d: intact prefix lost, only %d records", cut, n)
		}
		src.Close()
	}
}

// drainReader iterates src to the end and returns the record count, the
// terminal error (nil when iteration ended with io.EOF), and the reader for
// TornTail inspection.
func drainReader(src storage.RandomReader, strict bool) (n int, err error, r *Reader) {
	r = NewReader(src)
	r.StrictTail = strict
	for {
		_, err = r.Next()
		if err != nil {
			if err == io.EOF {
				err = nil
			}
			return n, err, r
		}
		n++
	}
}

// TestTailClassification pins the three-way distinction of log endings:
// clean EOF, torn tail (truncate and continue), and mid-file corruption
// (hard failure).
func TestTailClassification(t *testing.T) {
	fs := storage.NewMemFS()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), bytes.Repeat([]byte("c"), 300)}
	writeLog(t, fs, "l", recs)
	data, _ := fs.ReadFile("l")

	cases := []struct {
		name     string
		mutate   func([]byte) []byte
		wantRecs int
		wantTorn bool
		wantErr  bool
	}{
		{"clean-eof", func(b []byte) []byte { return b }, 3, false, false},
		{"clean-eof-zero-padded", func(b []byte) []byte {
			return append(b, make([]byte, 11)...) // tail < headerSize, all zero
		}, 3, false, false},
		{"torn-last-byte", func(b []byte) []byte { return b[:len(b)-1] }, 2, true, false},
		{"torn-mid-fragment", func(b []byte) []byte { return b[:len(b)-100] }, 2, true, false},
		{"torn-partial-header", func(b []byte) []byte {
			return b[:len(b)-300-4] // 3 bytes of record 2's header remain
		}, 2, true, false},
		{"torn-bitflip-tail", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-5] ^= 0x40 // payload of the final record
			return c
		}, 2, true, false},
		{"corrupt-mid-file", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[headerSize+1] ^= 0x40 // payload of record 0 ...
			// ... followed by a full block so the damage is not in the
			// final block.
			return append(c, make([]byte, BlockSize)...)
		}, 0, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs.WriteFile("m", tc.mutate(data))
			src, _ := fs.Open("m")
			defer src.Close()
			n, err, r := drainReader(src, false)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want ErrCorrupt, got nil after %d records", n)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if n != tc.wantRecs {
				t.Errorf("got %d records, want %d", n, tc.wantRecs)
			}
			if _, torn := r.TornTail(); torn != tc.wantTorn {
				t.Errorf("TornTail = %v, want %v", torn, tc.wantTorn)
			}
		})
	}
}

// TestStrictTail verifies the crash-harness negative-control switch: a torn
// tail that normal iteration truncates becomes a hard error.
func TestStrictTail(t *testing.T) {
	fs := storage.NewMemFS()
	writeLog(t, fs, "l", [][]byte{[]byte("alpha"), []byte("beta")})
	data, _ := fs.ReadFile("l")
	fs.WriteFile("t", data[:len(data)-2])

	src, _ := fs.Open("t")
	n, err, _ := drainReader(src, false)
	src.Close()
	if err != nil || n != 1 {
		t.Fatalf("lenient: got n=%d err=%v, want 1 record and truncation", n, err)
	}

	src, _ = fs.Open("t")
	n, err, _ = drainReader(src, true)
	src.Close()
	if err == nil {
		t.Fatalf("strict: torn tail accepted (%d records)", n)
	}
}

// TestTornTailOffset verifies the reported truncation offset delimits
// exactly the intact prefix.
func TestTornTailOffset(t *testing.T) {
	fs := storage.NewMemFS()
	recs := [][]byte{bytes.Repeat([]byte("x"), 50), bytes.Repeat([]byte("y"), 60)}
	writeLog(t, fs, "l", recs)
	data, _ := fs.ReadFile("l")
	fs.WriteFile("t", data[:len(data)-10])
	src, _ := fs.Open("t")
	defer src.Close()
	n, err, r := drainReader(src, false)
	if err != nil || n != 1 {
		t.Fatalf("got n=%d err=%v", n, err)
	}
	off, torn := r.TornTail()
	if !torn {
		t.Fatal("torn tail not flagged")
	}
	if want := int64(headerSize + 50); off != want {
		t.Errorf("truncation offset %d, want %d", off, want)
	}
}

func TestMidFileCorruption(t *testing.T) {
	fs := storage.NewMemFS()
	recs := [][]byte{bytes.Repeat([]byte("a"), 100), bytes.Repeat([]byte("b"), 100)}
	writeLog(t, fs, "l", recs)
	data, _ := fs.ReadFile("l")
	data[headerSize+10] ^= 0xff // flip a payload byte of record 0
	// Pad so the corrupt block is not the final partial block.
	data = append(data, make([]byte, BlockSize)...)
	fs.WriteFile("c", data)
	src, _ := fs.Open("c")
	r := NewReader(src)
	if _, err := r.Next(); err == nil {
		t.Fatal("corrupted record accepted")
	}
	src.Close()
}

func TestLoggerAsync(t *testing.T) {
	fs := storage.NewMemFS()
	f, _ := fs.Create("l")
	l := NewLogger(f, false)
	var want [][]byte
	for i := 0; i < 1000; i++ {
		rec := []byte(fmt.Sprintf("record-%04d", i))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, fs, "l")
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestLoggerSyncMode(t *testing.T) {
	fs := storage.NewMemFS()
	f, _ := fs.Create("l")
	l := NewLogger(f, true)
	if err := l.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	// In sync mode the record must be on "disk" before Append returns.
	got := readAll(t, fs, "l")
	if len(got) != 1 || string(got[0]) != "durable" {
		t.Fatalf("sync append not durable: %q", got)
	}
	l.Close()
}

func TestLoggerConcurrentAppends(t *testing.T) {
	fs := storage.NewMemFS()
	f, _ := fs.Create("l")
	l := NewLogger(f, false)
	const workers = 8
	const per = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, fs, "l")
	if len(got) != workers*per {
		t.Fatalf("got %d records, want %d", len(got), workers*per)
	}
	// Per-producer order must be preserved (FIFO queue).
	idx := make([]int, workers)
	for _, rec := range got {
		var w, i int
		fmt.Sscanf(string(rec), "w%d-%d", &w, &i)
		if i != idx[w] {
			t.Fatalf("producer %d order violated: got %d want %d", w, i, idx[w])
		}
		idx[w]++
	}
}

func TestQueueFIFO(t *testing.T) {
	q := syncutil.NewQueue[int]()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty queue dequeued")
	}
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue = %d,%v want %d", v, ok, i)
		}
	}
}

func TestQueueConcurrent(t *testing.T) {
	q := syncutil.NewQueue[int]()
	const producers = 4
	const per = 10000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(p*per + i)
			}
		}(p)
	}
	seen := make(map[int]bool, producers*per)
	var consumed int
	var mu sync.Mutex
	var cwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					mu.Lock()
					done := consumed == producers*per
					mu.Unlock()
					if done {
						return
					}
					continue
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate dequeue %d", v)
				}
				seen[v] = true
				consumed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	if len(seen) != producers*per {
		t.Fatalf("consumed %d, want %d", len(seen), producers*per)
	}
}
