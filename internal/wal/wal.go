// Package wal implements the write-ahead log.
//
// The on-disk format follows LevelDB: the file is a sequence of 32 KiB
// blocks; each record is split into fragments, each fragment carrying a
// CRC-32C checksum, a length, and a type (full / first / middle / last).
// A block's unusable tail (< 7 bytes) is zero-padded.
//
// Unlike LevelDB, writers are not serialized by the engine: cLSM relaxes
// the single-writer constraint, so records may be appended out of timestamp
// order (§4 of the paper). Every record payload is a batch whose entries
// carry explicit timestamps, so recovery restores the correct order simply
// by replaying entries into the versioned memtable.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"clsm/internal/storage"
)

const (
	// BlockSize is the physical block granularity of the log.
	BlockSize = 32 * 1024
	// headerSize is crc(4) + length(2) + type(1).
	headerSize = 7
)

type recordType byte

const (
	typeZero recordType = iota // padding
	typeFull
	typeFirst
	typeMiddle
	typeLast
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a checksum or framing failure in the log.
var ErrCorrupt = errors.New("wal: corrupt record")

// Writer appends records to a log file. It is not safe for concurrent use;
// the engine's Logger (see logger.go) serializes access.
//
// Framing and physical I/O are decoupled for group commit: Queue frames a
// record into an in-memory buffer, FlushQueued pushes everything buffered
// to the file in one Write. Append remains the immediate one-record form
// (Queue + FlushQueued) used by the manifest and tests.
type Writer struct {
	f         storage.File
	blockOff  int // offset within the current block
	buf       []byte
	written   int64
	syncEvery bool
}

// NewWriter wraps a freshly created log file.
func NewWriter(f storage.File, syncEvery bool) *Writer {
	return &Writer{f: f, syncEvery: syncEvery}
}

// Append writes one record (possibly fragmented across blocks).
func (w *Writer) Append(record []byte) error {
	w.Queue(record)
	if err := w.FlushQueued(); err != nil {
		return err
	}
	if w.syncEvery {
		return w.f.Sync()
	}
	return nil
}

// zeroPad is the zero source for block-tail padding (always < headerSize).
var zeroPad [headerSize]byte

// Queue frames one record (possibly fragmented across blocks) into the
// write buffer without touching the file. Call FlushQueued to persist the
// accumulated frames in a single write.
func (w *Writer) Queue(record []byte) {
	first := true
	for {
		avail := BlockSize - w.blockOff
		if avail < headerSize {
			// Pad the block tail with zeros.
			if avail > 0 {
				w.buf = append(w.buf, zeroPad[:avail]...)
				w.written += int64(avail)
			}
			w.blockOff = 0
			avail = BlockSize
		}
		space := avail - headerSize
		frag := record
		if len(frag) > space {
			frag = record[:space]
		}
		record = record[len(frag):]
		var t recordType
		switch {
		case first && len(record) == 0:
			t = typeFull
		case first:
			t = typeFirst
		case len(record) == 0:
			t = typeLast
		default:
			t = typeMiddle
		}
		w.emit(t, frag)
		first = false
		if len(record) == 0 {
			return
		}
	}
}

// emit frames one fragment into the write buffer.
func (w *Writer) emit(t recordType, frag []byte) {
	var hdr [headerSize]byte
	crc := crc32.Checksum([]byte{byte(t)}, castagnoli)
	crc = crc32.Update(crc, castagnoli, frag)
	binary.LittleEndian.PutUint32(hdr[0:4], crc)
	binary.LittleEndian.PutUint16(hdr[4:6], uint16(len(frag)))
	hdr[6] = byte(t)
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, frag...)
	w.blockOff += headerSize + len(frag)
	w.written += int64(headerSize + len(frag))
}

// Buffered returns the bytes queued but not yet written to the file.
func (w *Writer) Buffered() int { return len(w.buf) }

// FlushQueued writes every queued frame to the file in one Write call.
func (w *Writer) FlushQueued() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	if err != nil {
		return fmt.Errorf("wal: write group: %w", err)
	}
	return nil
}

// Size returns the bytes framed so far (queued frames included).
func (w *Writer) Size() int64 { return w.written }

// Sync pushes queued frames to the file and flushes it to the device.
func (w *Writer) Sync() error {
	if err := w.FlushQueued(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes, syncs, and closes the file.
func (w *Writer) Close() error {
	if err := w.Sync(); err != nil {
		return err
	}
	return w.f.Close()
}

// Reader iterates the records of a log file, distinguishing three ways a
// log can end:
//
//   - clean EOF: the file ends exactly at a record boundary (possibly
//     followed by zero padding). Next returns io.EOF, TornTail reports
//     false.
//   - torn tail: the final block holds a partial or checksum-failing
//     fragment — the normal result of a crash mid-write or of a device
//     persisting only a prefix of the last write. Iteration stops before
//     the damage with io.EOF and TornTail reports true with the offset of
//     the intact prefix; the caller logically truncates there and
//     continues. With StrictTail set, a torn tail surfaces as ErrCorrupt
//     instead (crash-harness negative control; never set in production).
//   - mid-file corruption: a framing or checksum failure before the final
//     block cannot be crash debris (earlier blocks were fully written) and
//     surfaces as ErrCorrupt.
type Reader struct {
	src    storage.RandomReader
	off    int64
	size   int64
	block  [BlockSize]byte
	blockN int // valid bytes in block
	pos    int // cursor within block
	rec    []byte

	// StrictTail makes a torn tail a hard ErrCorrupt instead of a silent
	// truncation point. Set before the first Next call.
	StrictTail bool

	torn    bool
	tornOff int64
}

// NewReader opens a log file for sequential record iteration.
func NewReader(src storage.RandomReader) *Reader {
	return &Reader{src: src, size: src.Size()}
}

// TornTail reports whether iteration ended at a torn tail rather than a
// clean record boundary, and the file offset of the intact prefix (the
// logical truncation point). Meaningful once Next has returned io.EOF.
func (r *Reader) TornTail() (off int64, torn bool) { return r.tornOff, r.torn }

// tornEOF marks the torn-tail truncation point at file offset off and ends
// iteration: io.EOF normally, ErrCorrupt under StrictTail.
func (r *Reader) tornEOF(off int64) error {
	if !r.torn {
		r.torn, r.tornOff = true, off
	}
	if r.StrictTail {
		return fmt.Errorf("%w: torn tail at offset %d", ErrCorrupt, off)
	}
	return io.EOF
}

// blockStart is the file offset of the currently loaded block.
func (r *Reader) blockStart() int64 { return r.off - int64(r.blockN) }

// finalBlock reports whether the loaded block is the file's last.
func (r *Reader) finalBlock() bool { return r.off >= r.size }

// Next returns the next record, io.EOF at the end of the intact prefix, or
// ErrCorrupt for mid-file corruption. After io.EOF, TornTail tells whether
// the prefix ended cleanly or at crash debris.
func (r *Reader) Next() ([]byte, error) {
	r.rec = r.rec[:0]
	expectContinuation := false
	recStart := int64(-1)
	for {
		fragOff := r.blockStart() + int64(r.pos)
		t, frag, err := r.nextFragment()
		if err != nil {
			if err == io.EOF && expectContinuation {
				// Crash mid-record: the partial record is discarded and the
				// log is truncated at the record's first fragment.
				return nil, r.tornEOF(recStart)
			}
			return nil, err
		}
		if recStart < 0 {
			recStart = fragOff
		}
		switch t {
		case typeFull:
			if expectContinuation {
				return nil, fmt.Errorf("%w: unexpected full fragment", ErrCorrupt)
			}
			return append(r.rec, frag...), nil
		case typeFirst:
			if expectContinuation {
				return nil, fmt.Errorf("%w: unexpected first fragment", ErrCorrupt)
			}
			r.rec = append(r.rec, frag...)
			expectContinuation = true
		case typeMiddle:
			if !expectContinuation {
				return nil, fmt.Errorf("%w: orphan middle fragment", ErrCorrupt)
			}
			r.rec = append(r.rec, frag...)
		case typeLast:
			if !expectContinuation {
				return nil, fmt.Errorf("%w: orphan last fragment", ErrCorrupt)
			}
			return append(r.rec, frag...), nil
		default:
			return nil, fmt.Errorf("%w: unknown fragment type %d", ErrCorrupt, t)
		}
	}
}

func (r *Reader) nextFragment() (recordType, []byte, error) {
	for {
		if r.blockN-r.pos < headerSize {
			// Too few bytes for a header. A legitimate writer zero-pads a
			// block tail, so nonzero residue in the final block is a
			// partially persisted header: a torn tail.
			if r.finalBlock() {
				for i := r.pos; i < r.blockN; i++ {
					if r.block[i] != 0 {
						return 0, nil, r.tornEOF(r.blockStart() + int64(r.pos))
					}
				}
			}
			if err := r.loadBlock(); err != nil {
				return 0, nil, err
			}
			continue
		}
		hdr := r.block[r.pos : r.pos+headerSize]
		length := int(binary.LittleEndian.Uint16(hdr[4:6]))
		t := recordType(hdr[6])
		if t == typeZero && length == 0 {
			// Zero padding inside a partially filled final block.
			if err := r.loadBlock(); err != nil {
				return 0, nil, err
			}
			continue
		}
		fragOff := r.blockStart() + int64(r.pos)
		if r.pos+headerSize+length > r.blockN {
			// Fragment extends past the valid data. In the final block that
			// is a write the device cut short (torn tail); earlier it is
			// framing garbage (every non-final block was fully written).
			if r.finalBlock() {
				return 0, nil, r.tornEOF(fragOff)
			}
			return 0, nil, fmt.Errorf("%w: fragment overruns block at offset %d", ErrCorrupt, fragOff)
		}
		frag := r.block[r.pos+headerSize : r.pos+headerSize+length]
		wantCRC := binary.LittleEndian.Uint32(hdr[0:4])
		crc := crc32.Checksum([]byte{byte(t)}, castagnoli)
		crc = crc32.Update(crc, castagnoli, frag)
		if crc != wantCRC {
			if r.finalBlock() {
				// Checksum failure in the final block: indistinguishable
				// from a torn write, so truncate there (LevelDB does the
				// same). Synced data is never affected — it always lies
				// before the damage in this block.
				return 0, nil, r.tornEOF(fragOff)
			}
			return 0, nil, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, fragOff)
		}
		r.pos += headerSize + length
		return t, frag, nil
	}
}

func (r *Reader) loadBlock() error {
	if r.off >= r.size {
		return io.EOF
	}
	n, err := r.src.ReadAt(r.block[:], r.off)
	if n == 0 {
		if err == nil || err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("wal: read block: %w", err)
	}
	r.off += int64(n)
	r.blockN = n
	r.pos = 0
	return nil
}
