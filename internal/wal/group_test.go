package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"clsm/internal/obs"
)

// trackingFile distinguishes written from durable bytes: Sync publishes the
// current length as the durable horizon, the way a real device loses
// post-fsync tail bytes on power failure.
type trackingFile struct {
	mu      sync.Mutex
	data    []byte
	durable int // bytes covered by the last Sync
	syncs   int
	writes  int
	// failAfter, when >= 0, fails every Write once that many writes have
	// succeeded.
	failAfter int
	writeErr  error
	syncDelay time.Duration
}

func newTrackingFile() *trackingFile { return &trackingFile{failAfter: -1} }

func (f *trackingFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failAfter >= 0 && f.writes >= f.failAfter {
		return 0, f.writeErr
	}
	f.writes++
	f.data = append(f.data, p...)
	return len(p), nil
}

func (f *trackingFile) Sync() error {
	if f.syncDelay > 0 {
		time.Sleep(f.syncDelay)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	f.durable = len(f.data)
	return nil
}

func (f *trackingFile) Close() error { return nil }

func (f *trackingFile) snapshot() (durable []byte, syncs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.data[:f.durable]...), f.syncs
}

// durableReader adapts a byte snapshot to the Reader's source interface.
type durableReader struct{ data []byte }

func (r *durableReader) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(r.data)) {
		return 0, io.EOF
	}
	n := copy(p, r.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}
func (r *durableReader) Size() int64  { return int64(len(r.data)) }
func (r *durableReader) Close() error { return nil }

func readAllRecords(t *testing.T, data []byte) map[string]bool {
	t.Helper()
	got := map[string]bool{}
	rd := NewReader(&durableReader{data: data})
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return got
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got[string(rec)] = true
	}
}

// TestGroupCommitAmortizesSyncs is the tentpole property: under concurrent
// sync-mode writers, the drain commits whole groups with one device sync
// each, so syncs ≪ records.
func TestGroupCommitAmortizesSyncs(t *testing.T) {
	f := newTrackingFile()
	f.syncDelay = 200 * time.Microsecond // make groups accumulate
	l := NewLogger(f, true)

	var appends, syncs obs.Counter
	var groups obs.Histogram
	l.Instrument(&appends, &syncs, &groups)

	const writers = 8
	const perWriter = 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := []byte(fmt.Sprintf("w%d-r%d", w, i))
				if err := l.Append(rec); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	const records = writers * perWriter
	durable, fileSyncs := f.snapshot()
	got := readAllRecords(t, durable)
	if len(got) != records {
		t.Fatalf("recovered %d records, want %d", len(got), records)
	}
	if appends.Load() != records {
		t.Fatalf("appends counter = %d, want %d", appends.Load(), records)
	}
	// With 8 writers parked on each group, every sync should cover several
	// records. Even a heavily preempted run stays far under one sync per
	// record; the tentpole requires syncs ≪ records.
	if fileSyncs >= records/2 {
		t.Fatalf("group commit ineffective: %d syncs for %d records", fileSyncs, records)
	}
	// Writer.Close issues one final uncounted sync, so the counter may be
	// one short of what the file saw.
	if c := syncs.Load(); c == 0 || c > uint64(fileSyncs) {
		t.Fatalf("syncs counter = %d, file saw %d", c, fileSyncs)
	}
	if groups.Count() == 0 {
		t.Fatal("group-size histogram recorded nothing")
	}
	t.Logf("%d records in %d syncs (mean group %.1f)", records, fileSyncs,
		float64(records)/float64(fileSyncs))
}

// TestGroupErrorFailsWholeGroup pins error semantics: a failing write fails
// every waiter of the group, and the logger stays poisoned — subsequent
// Appends surface the original error via errors.Is.
func TestGroupErrorFailsWholeGroup(t *testing.T) {
	errDisk := errors.New("disk gone")
	f := newTrackingFile()
	f.failAfter = 0 // first physical write fails
	f.writeErr = errDisk
	l := NewLogger(f, true)

	const writers = 4
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = l.Append([]byte(fmt.Sprintf("rec-%d", w)))
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if !errors.Is(err, errDisk) {
			t.Fatalf("writer %d: err = %v, want wrapped %v", w, err, errDisk)
		}
	}
	// The logger is poisoned: later appends fail fast with the same error.
	if err := l.Append([]byte("late")); !errors.Is(err, errDisk) {
		t.Fatalf("post-failure Append = %v, want wrapped %v", err, errDisk)
	}
	if err := l.Flush(); !errors.Is(err, errDisk) {
		t.Fatalf("post-failure Flush = %v, want wrapped %v", err, errDisk)
	}
}

// TestFlushBarrierObservesPriorRecords pins the barrier contract under
// concurrency: every record whose Append returned before Flush was called
// is durable when Flush returns.
func TestFlushBarrierObservesPriorRecords(t *testing.T) {
	f := newTrackingFile()
	l := NewLogger(f, false) // async: only barriers force syncs

	var mu sync.Mutex
	enqueued := map[string]bool{}

	const writers = 4
	const perWriter = 3000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := fmt.Sprintf("w%d-r%d", w, i)
				if err := l.Append([]byte(rec)); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				mu.Lock()
				enqueued[rec] = true
				mu.Unlock()
			}
		}(w)
	}

	// Interleave barriers with the producers; each round checks that every
	// record enqueued before the Flush is durable when it returns.
	for round := 0; ; round++ {
		mu.Lock()
		want := make([]string, 0, len(enqueued))
		for rec := range enqueued {
			want = append(want, rec)
		}
		mu.Unlock()
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		durable, _ := f.snapshot()
		got := readAllRecords(t, durable)
		for _, rec := range want {
			if !got[rec] {
				t.Fatalf("round %d: record %q enqueued before Flush not durable after", round, rec)
			}
		}
		if len(want) == writers*perWriter {
			break
		}
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseSyncsEverything pins the Close sweep: every record accepted
// before Close — including ones the drain picks up only during the final
// sweep — is synced, not merely written, when Close returns.
func TestCloseSyncsEverything(t *testing.T) {
	f := newTrackingFile()
	l := NewLogger(f, false)

	const n = 500
	for i := 0; i < n; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Close races the drain for the backlog; whichever path commits it must
	// leave nothing beyond the durable horizon.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	written, durable := len(f.data), f.durable
	f.mu.Unlock()
	if durable != written {
		t.Fatalf("Close left %d of %d bytes unsynced", written-durable, written)
	}
	got := readAllRecords(t, f.data[:durable])
	if len(got) != n {
		t.Fatalf("recovered %d records after Close, want %d", len(got), n)
	}
	if err := l.Append([]byte("late")); !errors.Is(err, ErrLoggerClosed) {
		t.Fatalf("Append after Close = %v, want ErrLoggerClosed", err)
	}
}

// TestAppendOwnedTransfersOwnership pins the zero-copy contract: the buffer
// handed to AppendOwned is written verbatim and recycled, not copied.
func TestAppendOwnedTransfersOwnership(t *testing.T) {
	f := newTrackingFile()
	l := NewLogger(f, true)
	payload := []byte("owned-record-payload")
	buf := GetBuf()
	*buf = append((*buf)[:0], payload...)
	if err := l.AppendOwned(buf); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	durable, _ := f.snapshot()
	if !readAllRecords(t, durable)[string(payload)] {
		t.Fatal("owned record not recovered")
	}
	// The buffer must not still be referenced by a visible queue entry.
	if l.Pending() != 0 {
		t.Fatalf("pending = %d after Close", l.Pending())
	}
}

// TestWriterQueueMatchesAppend pins that a group of queued records framed
// by one FlushQueued is byte-identical to the same records written by
// individual Appends — the on-disk format is unchanged by group commit.
func TestWriterQueueMatchesAppend(t *testing.T) {
	recs := [][]byte{
		[]byte("a"),
		bytes.Repeat([]byte("b"), BlockSize), // forces fragmentation
		[]byte("c"),
	}
	one := newTrackingFile()
	w1 := NewWriter(one, false)
	for _, r := range recs {
		if err := w1.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	grouped := newTrackingFile()
	w2 := NewWriter(grouped, false)
	for _, r := range recs {
		w2.Queue(r)
	}
	if w2.Buffered() == 0 {
		t.Fatal("Queue buffered nothing")
	}
	if err := w2.FlushQueued(); err != nil {
		t.Fatal(err)
	}
	if grouped.writes != 1 {
		t.Fatalf("grouped flush used %d writes, want 1", grouped.writes)
	}
	if !bytes.Equal(one.data, grouped.data) {
		t.Fatal("grouped framing differs from per-record framing")
	}
	if w1.Size() != w2.Size() {
		t.Fatalf("Size mismatch: %d vs %d", w1.Size(), w2.Size())
	}
}
