package clsm_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"clsm"
)

// TestOpenBothConstructors exercises both public constructors end to end
// and checks they yield stores with identical observable behavior.
func TestOpenBothConstructors(t *testing.T) {
	open := map[string]func() (*clsm.DB, error){
		"struct": func() (*clsm.DB, error) {
			return clsm.Open(clsm.Options{MemtableSize: 1 << 20, CompactionThreads: 2})
		},
		"functional": func() (*clsm.DB, error) {
			return clsm.OpenPath("",
				clsm.WithMemtableSize(1<<20),
				clsm.WithCompactionThreads(2))
		},
	}
	for name, ctor := range open {
		t.Run(name, func(t *testing.T) {
			db, err := ctor()
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			if err := db.Put([]byte("k"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := db.Get([]byte("k"))
			if err != nil || !ok || string(v) != "v" {
				t.Fatalf("Get = %q %v %v", v, ok, err)
			}

			// Get/Has symmetry: absence is ok=false with nil error.
			if ok, err := db.Has([]byte("k")); err != nil || !ok {
				t.Fatalf("Has(present) = %v %v", ok, err)
			}
			if ok, err := db.Has([]byte("missing")); err != nil || ok {
				t.Fatalf("Has(absent) = %v %v, want false nil", ok, err)
			}
			if err := db.Delete([]byte("k")); err != nil {
				t.Fatal(err)
			}
			if ok, err := db.Has([]byte("k")); err != nil || ok {
				t.Fatalf("Has(deleted) = %v %v, want false nil", ok, err)
			}

			// Snapshot-scoped Has mirrors the DB method and is isolated
			// from writes after the snapshot.
			db.Put([]byte("s"), []byte("1"))
			snap, err := db.GetSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			if ok, err := snap.Has([]byte("s")); err != nil || !ok {
				t.Fatalf("Snapshot.Has(present) = %v %v", ok, err)
			}
			db.Delete([]byte("s"))
			if ok, err := snap.Has([]byte("s")); err != nil || !ok {
				t.Fatalf("Snapshot.Has after later delete = %v %v, want true", ok, err)
			}
			snap.Close()

			// Observability is always on.
			if db.Observer() == nil {
				t.Fatal("Observer() returned nil")
			}
			if db.Observer().Op(clsm.OpPut).Count() == 0 {
				t.Fatal("put latency histogram empty after Puts")
			}
		})
	}
}

// TestErrorsAreIsComparable pins the wrapped-sentinel contract: closed and
// expired handles fail with errors testable via errors.Is.
func TestErrorsAreIsComparable(t *testing.T) {
	db, err := clsm.OpenPath("", clsm.WithSnapshotTTL(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put([]byte("k"), []byte("v"))

	// TTL-reclaimed snapshot → ErrSnapshotExpired (wrapped with context).
	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, err := snap.Get([]byte("k"))
		if errors.Is(err, clsm.ErrSnapshotExpired) {
			if err == clsm.ErrSnapshotExpired {
				t.Fatal("expired error is bare; the API promises wrapped sentinels")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Application-closed snapshot → ErrClosed.
	snap2, _ := db.GetSnapshot()
	snap2.Close()
	if _, _, err := snap2.Get([]byte("k")); !errors.Is(err, clsm.ErrClosed) {
		t.Fatalf("closed-snapshot error = %v, want errors.Is ErrClosed", err)
	}
	if _, err := snap2.Has([]byte("k")); !errors.Is(err, clsm.ErrClosed) {
		t.Fatalf("closed-snapshot Has error = %v, want errors.Is ErrClosed", err)
	}

	// Closed store → ErrClosed from every surface.
	db2, _ := clsm.OpenPath("")
	db2.Close()
	if err := db2.Put([]byte("k"), []byte("v")); !errors.Is(err, clsm.ErrClosed) {
		t.Fatalf("Put on closed store = %v, want ErrClosed", err)
	}
	if _, _, err := db2.Get([]byte("k")); !errors.Is(err, clsm.ErrClosed) {
		t.Fatalf("Get on closed store = %v, want ErrClosed", err)
	}
	if _, err := db2.Has([]byte("k")); !errors.Is(err, clsm.ErrClosed) {
		t.Fatalf("Has on closed store = %v, want ErrClosed", err)
	}
}

// TestEventSinkViaPublicAPI checks WithObserver delivers engine events
// through the public constructor.
func TestEventSinkViaPublicAPI(t *testing.T) {
	events := make(chan clsm.Event, 4096)
	db, err := clsm.OpenPath("",
		clsm.WithMemtableSize(1<<20),
		clsm.WithObserver(func(e clsm.Event) {
			select {
			case events <- e:
			default:
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 1024)
	for i := 0; i < 3000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%06d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	close(events)

	seen := map[clsm.EventType]int{}
	for e := range events {
		seen[e.Type]++
	}
	for _, want := range []clsm.EventType{
		clsm.EventFlushStart, clsm.EventFlushEnd,
		clsm.EventCompactionStart, clsm.EventCompactionEnd,
	} {
		if seen[want] == 0 {
			t.Errorf("sink never saw %s (saw %v)", want, seen)
		}
	}
}

// TestWriteAndRMWHistograms covers the batch and RMW write surfaces and
// their per-op histograms.
func TestWriteAndRMWHistograms(t *testing.T) {
	db, err := clsm.OpenPath("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var b clsm.Batch
	b.Put([]byte("a"), []byte("1"))
	b.Delete([]byte("b"))
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	if err := db.RMW([]byte("n"), func(old []byte, ok bool) []byte {
		return append(old, 'x')
	}); err != nil {
		t.Fatal(err)
	}
	o := db.Observer()
	if got := o.Op(clsm.OpWrite).Count(); got != 1 {
		t.Errorf("write histogram count = %d, want 1", got)
	}
	if got := o.Op(clsm.OpRMW).Count(); got != 1 {
		t.Errorf("rmw histogram count = %d, want 1", got)
	}
}
