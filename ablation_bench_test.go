// Ablation benchmarks for the design choices DESIGN.md calls out: the
// asynchronous logging queue, the Bloom filters, the block cache, the
// writer-preferring shared-exclusive lock, the timestamp oracle, and the
// linearizable-snapshot variant. Each isolates one mechanism so its cost
// or benefit is measurable independently of the full figures.
package clsm_test

import (
	"fmt"
	"sync"
	"testing"

	"clsm/internal/baseline"
	"clsm/internal/core"
	"clsm/internal/harness"
	"clsm/internal/oracle"
	"clsm/internal/syncutil"
	"clsm/internal/workload"
)

// BenchmarkAblationWALMode measures the put path under the three logging
// disciplines: asynchronous (cLSM/LevelDB default), synchronous (durable),
// and disabled.
func BenchmarkAblationWALMode(b *testing.B) {
	modes := []struct {
		name          string
		sync, disable bool
	}{
		{"async", false, false},
		{"sync", true, false},
		{"none", false, true},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			opts := harness.Smoke.CoreOptions()
			opts.SyncWrites = mode.sync
			opts.DisableWAL = mode.disable
			s, err := baseline.New(baseline.NameCLSM, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			g := workload.New(workload.Config{KeySpace: 1 << 20, KeySize: 8, ValueSize: 256}, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := append([]byte(nil), g.NextKey()...)
				if err := s.Put(k, g.Value(int64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBloom measures point reads of absent keys with and
// without table filters — the case Bloom filters exist for.
func BenchmarkAblationBloom(b *testing.B) {
	for _, bits := range []int{0, 10} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			opts := harness.Smoke.CoreOptions()
			opts.Disk.BloomBitsPerKey = bits
			s, err := baseline.New(baseline.NameCLSM, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			cfg := workload.Config{KeySpace: 30_000, KeySize: 8, ValueSize: 128}
			if err := harness.Preload(s, cfg, 30_000, 4); err != nil {
				b.Fatal(err)
			}
			absent := make([][]byte, 1024)
			for i := range absent {
				absent[i] = []byte(fmt.Sprintf("nosuchkey%06d", i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, err := s.Get(absent[i%len(absent)]); err != nil {
					b.Fatal(err)
				} else if ok {
					b.Fatal("absent key found")
				}
			}
		})
	}
}

// BenchmarkAblationBlockCache measures hot reads across block-cache sizes.
func BenchmarkAblationBlockCache(b *testing.B) {
	for _, mb := range []int64{1, 8, 64} {
		b.Run(fmt.Sprintf("cache=%dMB", mb), func(b *testing.B) {
			opts := harness.Smoke.CoreOptions()
			opts.BlockCacheSize = mb << 20
			s, err := baseline.New(baseline.NameCLSM, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			cfg := workload.Config{KeySpace: 30_000, KeySize: 8, ValueSize: 256, Dist: workload.Hotspot}
			if err := harness.Preload(s, cfg, 30_000, 4); err != nil {
				b.Fatal(err)
			}
			g := workload.New(cfg, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Get(g.NextKey()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSnapshotVariant compares the default (serializable,
// possibly-in-the-past) getSnap with the blocking linearizable variant of
// §3.2.1 under concurrent writers.
func BenchmarkAblationSnapshotVariant(b *testing.B) {
	for _, lin := range []bool{false, true} {
		name := "serializable"
		if lin {
			name = "linearizable"
		}
		b.Run(name, func(b *testing.B) {
			opts := harness.Smoke.CoreOptions()
			opts.LinearizableSnapshots = lin
			db, err := core.Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) { // background writers keep timestamps active
					defer wg.Done()
					g := workload.New(workload.Config{KeySpace: 1 << 16, KeySize: 8, ValueSize: 64}, int64(w))
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						k := append([]byte(nil), g.NextKey()...)
						db.Put(k, g.Value(int64(i)))
					}
				}(w)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap, err := db.GetSnapshot()
				if err != nil {
					b.Fatal(err)
				}
				snap.Close()
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkAblationSharedExclusiveVsRWMutex compares the custom
// writer-preferring lock against sync.RWMutex on the put-path usage
// pattern (short shared sections, rare exclusive).
func BenchmarkAblationSharedExclusiveVsRWMutex(b *testing.B) {
	b.Run("SharedExclusive", func(b *testing.B) {
		var l syncutil.SharedExclusive
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				l.LockShared()
				l.UnlockShared()
			}
		})
	})
	b.Run("RWMutex", func(b *testing.B) {
		var l sync.RWMutex
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				l.RLock()
				l.RUnlock()
			}
		})
	})
}

// BenchmarkAblationOracle measures timestamp issue/release (every put pays
// this) and snapshot acquisition.
func BenchmarkAblationOracle(b *testing.B) {
	b.Run("GetTS", func(b *testing.B) {
		o := oracle.New()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				_, slot := o.GetTS()
				o.Done(slot)
			}
		})
	})
	b.Run("SnapshotTS", func(b *testing.B) {
		o := oracle.New()
		for i := 0; i < b.N; i++ {
			o.SnapshotTS()
		}
	})
}
