package clsm

import (
	"net/http"

	"clsm/internal/obs"
)

// Observer aggregates a store's instrumentation: per-operation latency
// histograms (Put/Get/Delete/Write/RMW/GetSnapshot/iterator Next), block
// cache, WAL and compaction counters, and the engine event trace. Obtain
// a store's observer with DB.Observer; export it over HTTP with
// Observer.Publish plus Handler.
type Observer = obs.Observer

// Histogram is a lock-free, mergeable, log-bucketed latency histogram
// with p50/p95/p99/max accessors; see Observer.Op.
type Histogram = obs.Histogram

// Op names an instrumented operation; see Observer.Op.
type Op = obs.Op

// Instrumented operations.
const (
	OpPut         = obs.OpPut
	OpGet         = obs.OpGet
	OpDelete      = obs.OpDelete
	OpWrite       = obs.OpWrite
	OpRMW         = obs.OpRMW
	OpGetSnapshot = obs.OpGetSnapshot
	OpIterNext    = obs.OpIterNext
	OpMultiGet    = obs.OpMultiGet
)

// Event is one engine trace entry; see Options.EventSink / WithObserver.
type Event = obs.Event

// EventType classifies engine trace events.
type EventType = obs.EventType

// Engine event types.
const (
	EventFlushStart      = obs.EvFlushStart
	EventFlushEnd        = obs.EvFlushEnd
	EventCompactionStart = obs.EvCompactionStart
	EventCompactionEnd   = obs.EvCompactionEnd
	EventStallBegin      = obs.EvStallBegin
	EventStallEnd        = obs.EvStallEnd
	EventSnapshotReclaim = obs.EvSnapshotReclaim
	EventDegraded        = obs.EvDegraded
	EventResumed         = obs.EvResumed
	EventReadOnly        = obs.EvReadOnly
	// Write-throttle lifecycle: the admission controller activated,
	// crossed a 2x rate boundary, or deactivated. Throttle events carry
	// the admitted rate (bytes/s) in Event.Bytes.
	EventThrottleOn     = obs.EvThrottleOn
	EventThrottleAdjust = obs.EvThrottleAdjust
	EventThrottleOff    = obs.EvThrottleOff
	// EventVlogGC records a completed value-log segment rewrite; Bytes is
	// the retired segment's size (see docs/VALUELOG.md).
	EventVlogGC = obs.EvVlogGC
)

// StallCause says why a writer stalled.
type StallCause = obs.StallCause

// Stall causes carried by EventStallBegin/EventStallEnd events.
const (
	StallL0Slowdown   = obs.CauseL0Slowdown
	StallL0Stop       = obs.CauseL0Stop
	StallMemtableWait = obs.CauseMemtableWait
)

// EventSink receives engine trace events synchronously, in order; it must
// be fast and must not call back into the store.
type EventSink = obs.EventSink

// DebugHandler returns the expvar HTTP handler serving every published
// observer as JSON; mount it at /debug/vars:
//
//	db.Observer().Publish("clsm")
//	http.Handle("/debug/vars", clsm.DebugHandler())
func DebugHandler() http.Handler { return obs.Handler() }
