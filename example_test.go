package clsm_test

import (
	"fmt"
	"log"

	"clsm"
)

// Example shows the basic open/put/get lifecycle on an in-memory store.
func Example() {
	db, err := clsm.Open(clsm.Options{}) // empty Path = in-memory store
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte("greeting"), []byte("hello")); err != nil {
		log.Fatal(err)
	}
	v, ok, err := db.Get([]byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(v), ok)
	// Output: hello true
}

// ExampleOpenPath opens an in-memory store with functional options, uses
// the Get/Has tri-state read surface, and inspects the always-on latency
// histograms.
func ExampleOpenPath() {
	db, err := clsm.OpenPath("", // empty path = volatile in-memory store
		clsm.WithMemtableSize(8<<20),
		clsm.WithCompactionThreads(2))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte("greeting"), []byte("hello")); err != nil {
		log.Fatal(err)
	}
	v, ok, err := db.Get([]byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ok, string(v))

	ok, _ = db.Has([]byte("absent")) // absence is not an error
	fmt.Println(ok)

	// Every operation is recorded in an allocation-free histogram.
	fmt.Println(db.Observer().Op(clsm.OpPut).Count())
	// Output:
	// true hello
	// false
	// 1
}

// ExampleDB_RMW implements an atomic counter with the paper's non-blocking
// read-modify-write.
func ExampleDB_RMW() {
	db, _ := clsm.Open(clsm.Options{})
	defer db.Close()

	incr := func(old []byte, exists bool) []byte {
		n := byte(0)
		if exists {
			n = old[0]
		}
		return []byte{n + 1}
	}
	for i := 0; i < 3; i++ {
		if err := db.RMW([]byte("visits"), incr); err != nil {
			log.Fatal(err)
		}
	}
	v, _, _ := db.Get([]byte("visits"))
	fmt.Println(v[0])
	// Output: 3
}

// ExampleDB_GetSnapshot demonstrates snapshot isolation: the snapshot keeps
// seeing the state at its creation while the live store moves on.
func ExampleDB_GetSnapshot() {
	db, _ := clsm.Open(clsm.Options{})
	defer db.Close()

	db.Put([]byte("k"), []byte("v1"))
	snap, _ := db.GetSnapshot()
	defer snap.Close()

	db.Put([]byte("k"), []byte("v2"))

	old, _, _ := snap.Get([]byte("k"))
	live, _, _ := db.Get([]byte("k"))
	fmt.Println(string(old), string(live))
	// Output: v1 v2
}

// ExampleDB_Write applies several writes atomically.
func ExampleDB_Write() {
	db, _ := clsm.Open(clsm.Options{})
	defer db.Close()

	var b clsm.Batch
	b.Put([]byte("from"), []byte("-10"))
	b.Put([]byte("to"), []byte("+10"))
	if err := db.Write(&b); err != nil {
		log.Fatal(err)
	}
	v, _, _ := db.Get([]byte("to"))
	fmt.Println(string(v))
	// Output: +10
}

// ExampleDB_NewIterator scans a key range in order.
func ExampleDB_NewIterator() {
	db, _ := clsm.Open(clsm.Options{})
	defer db.Close()

	for _, k := range []string{"b", "a", "c"} {
		db.Put([]byte("k/"+k), []byte(k))
	}
	it, _ := db.NewIterator()
	defer it.Close()
	for it.Seek([]byte("k/")); it.Valid(); it.Next() {
		fmt.Printf("%s ", it.Value())
	}
	// Output: a b c
}
