package clsm

import (
	"context"

	"clsm/internal/core"
	"clsm/internal/shard"
)

// ReadCheck is one read-set assertion of a stateless remote transaction;
// see DB.TxnWrite and docs/TRANSACTIONS.md.
type ReadCheck = core.ReadCheck

// Txn is a multi-key optimistic transaction: reads are served at a
// snapshot timestamp and recorded in a read set, writes are buffered, and
// Commit validates that no read- or write-set key changed since the
// snapshot before applying the write set as one atomic batch. On conflict
// Commit returns a wrapped ErrTxnConflict and the caller retries from
// scratch — the paper's Algorithm 3 read-modify-write generalized from
// one key to many.
//
// A Txn is not safe for concurrent use and pins engine versions until
// Commit or Rollback; always finish it (defer txn.Rollback() is safe).
// On a sharded store transactions are single-shard: the first operation
// pins the owning shard and any key routing elsewhere fails with
// ErrInvalidOptions (see docs/SHARDING.md for why atomicity stops at the
// shard boundary).
type Txn struct {
	c *core.Txn
	s *shard.Txn
}

// BeginTxn starts a transaction.
func (db *DB) BeginTxn() (*Txn, error) { return db.BeginTxnCtx(nil) }

// BeginTxnCtx is BeginTxn with a context, checked once at entry.
func (db *DB) BeginTxnCtx(ctx context.Context) (*Txn, error) {
	if db.sh != nil {
		t, err := db.sh.BeginTxnCtx(ctx)
		if err != nil {
			return nil, err
		}
		return &Txn{s: t}, nil
	}
	t, err := db.inner.BeginTxnCtx(ctx)
	if err != nil {
		return nil, err
	}
	return &Txn{c: t}, nil
}

// Get reads key at the transaction's snapshot, seeing the transaction's
// own buffered writes first (read-your-writes). External reads join the
// read set validated at Commit.
func (t *Txn) Get(key []byte) (value []byte, ok bool, err error) {
	if t.s != nil {
		return t.s.Get(key)
	}
	return t.c.Get(key)
}

// Has reports whether key is visible to the transaction (see Get).
func (t *Txn) Has(key []byte) (bool, error) {
	if t.s != nil {
		return t.s.Has(key)
	}
	return t.c.Has(key)
}

// Put buffers (key, value); nothing is visible outside the transaction
// until Commit. Key and value are copied.
func (t *Txn) Put(key, value []byte) error {
	if t.s != nil {
		return t.s.Put(key, value)
	}
	return t.c.Put(key, value)
}

// Delete buffers a deletion marker for key (see Put).
func (t *Txn) Delete(key []byte) error {
	if t.s != nil {
		return t.s.Delete(key)
	}
	return t.c.Delete(key)
}

// Pending returns the number of buffered writes.
func (t *Txn) Pending() int {
	if t.s != nil {
		return t.s.Pending()
	}
	return t.c.Pending()
}

// Rollback discards the transaction and releases its snapshot. It is a
// no-op on a finished transaction, so deferring it is always safe.
func (t *Txn) Rollback() {
	if t.s != nil {
		t.s.Rollback()
		return
	}
	t.c.Rollback()
}

// Commit validates and applies the transaction. On conflict it returns a
// wrapped ErrTxnConflict; the transaction is finished either way (retry
// by beginning a new one).
func (t *Txn) Commit() error { return t.CommitCtx(nil) }

// CommitCtx is Commit with cancellation for the pre-admission waits (see
// PutCtx). Once validation starts the commit runs to completion.
func (t *Txn) CommitCtx(ctx context.Context) error {
	if t.s != nil {
		return t.s.CommitCtx(ctx)
	}
	return t.c.CommitCtx(ctx)
}

// Txn runs fn inside a transaction: commit if fn returns nil, roll back
// (returning fn's error) otherwise. Conflicts surface as a wrapped
// ErrTxnConflict; retry loops belong to the caller, whose fn must be safe
// to re-run:
//
//	for {
//		err := db.Txn(func(t *clsm.Txn) error {
//			v, _, _ := t.Get(k)
//			return t.Put(k, bump(v))
//		})
//		if !errors.Is(err, clsm.ErrTxnConflict) {
//			return err
//		}
//	}
func (db *DB) Txn(fn func(*Txn) error) error { return db.TxnCtx(nil, fn) }

// TxnCtx is Txn with cancellation (see CommitCtx).
func (db *DB) TxnCtx(ctx context.Context, fn func(*Txn) error) error {
	t, err := db.BeginTxnCtx(ctx)
	if err != nil {
		return err
	}
	if err := fn(t); err != nil {
		t.Rollback()
		return err
	}
	return t.CommitCtx(ctx)
}

// TxnWriteCtx commits b only if every ReadCheck still holds: each check
// key's current value (or absence) must equal what the caller observed.
// It is the engine half of the wire protocol's single-round-trip remote
// transaction (clsmclient.TxnWrite) and is validated and applied through
// the same optimistic path as Txn. A failed check returns a wrapped
// ErrTxnConflict. On a sharded store all keys must route to one shard.
func (db *DB) TxnWriteCtx(ctx context.Context, checks []ReadCheck, b *Batch) error {
	if db.sh != nil {
		return db.sh.TxnWriteCtx(ctx, checks, b)
	}
	return db.inner.TxnWriteCtx(ctx, checks, b)
}
