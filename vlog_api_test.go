package clsm

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"
)

func vlogVal(i, n int) []byte {
	b := make([]byte, 0, n)
	stamp := fmt.Sprintf("blob-%06d-", i)
	for len(b) < n {
		b = append(b, stamp...)
	}
	return b[:n]
}

// TestVlogPublicSurface drives the large-value API end to end through the
// public package: separation threshold, GC trigger, and the vlog metrics
// block — on both the single-engine and sharded facades.
func TestVlogPublicSurface(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db, err := OpenPath("",
				WithShards(shards),
				WithMemtableSize(64<<10),
				WithValueThreshold(64),
				WithValueLogSegmentSize(8<<10),
				WithValueLogGCRatio(0.3))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			const rounds, nKeys = 20, 25
			for r := 0; r < rounds; r++ {
				for i := 0; i < nKeys; i++ {
					if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), vlogVal(r*nKeys+i, 256)); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			if m := db.Metrics(); m.VlogSegments == 0 {
				t.Fatal("no value-log segments after 500 large puts")
			}
			if err := db.CompactRange(); err != nil {
				t.Fatal(err)
			}
			if err := db.CompactValueLog(context.Background()); err != nil {
				t.Fatal(err)
			}
			if m := db.Metrics(); m.VlogGCRuns == 0 {
				t.Fatal("CompactValueLog rewrote nothing despite 95% garbage")
			}
			for i := 0; i < nKeys; i++ {
				want := vlogVal((rounds-1)*nKeys+i, 256)
				got, ok, err := db.Get([]byte(fmt.Sprintf("k%03d", i)))
				if err != nil || !ok || !bytes.Equal(got, want) {
					t.Fatalf("after GC: Get k%03d = ok=%v err=%v (%d bytes)", i, ok, err, len(got))
				}
			}
		})
	}
}

// TestVlogBackupRestoreRoundTrip: backing up a store with key-value
// separation ships the value-log segments, and the restored store
// resolves every pointer — even when opened without the threshold.
func TestVlogBackupRestoreRoundTrip(t *testing.T) {
	root := t.TempDir()
	db, err := OpenPath(filepath.Join(root, "live"),
		WithValueThreshold(64),
		WithValueLogSegmentSize(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 60
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), vlogVal(i, 300)); err != nil {
			t.Fatal(err)
		}
	}
	be, err := NewBackupEngine(filepath.Join(root, "remote"), RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := db.Backup(be)
	if err != nil {
		t.Fatalf("backup: %v", err)
	}

	restored := filepath.Join(root, "restored")
	if _, err := be.Restore(m.ID, restored); err != nil {
		t.Fatalf("restore: %v", err)
	}
	re, err := OpenPath(restored) // no threshold: reads must not need it
	if err != nil {
		t.Fatalf("open restored: %v", err)
	}
	defer re.Close()
	for i := 0; i < n; i++ {
		got, ok, err := re.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || !ok || !bytes.Equal(got, vlogVal(i, 300)) {
			t.Fatalf("restored Get k%03d = ok=%v err=%v (%d bytes)", i, ok, err, len(got))
		}
	}
}
