package clsm

import (
	"time"

	"clsm/internal/core"
	"clsm/internal/obs"
	"clsm/internal/storage"
	"clsm/internal/version"
)

// Options configures a store. The zero value is a usable in-memory store;
// every field's zero value picks the default listed below. Options and
// the functional options accepted by OpenPath configure the same
// settings and delegate onto one path — use whichever reads better.
//
// Defaults (the single source of truth for the public surface):
//
//	MemtableSize          4 MiB
//	BlockCacheSize        32 MiB
//	SyncWrites            false (asynchronous group logging)
//	DisableWAL            false
//	LinearizableSnapshots false (serializable snapshots)
//	CompactionThreads     1
//	SnapshotTTL           0 (handles never expire)
//	Compression           false
//	WriteRateLimit        0 (no cap; throttle engages only under backlog)
//	SchedulerProfile      "default"
//	L0CompactionTrigger   4 files
//	L0SlowdownTrigger     8 files
//	L0StopTrigger         12 files
//	BaseLevelBytes        10 MiB
//	TableFileSize         2 MiB
//	BlockSize             4 KiB
//	BloomBitsPerKey       0 (Bloom filters disabled; 10 is a good value)
//	ValueThreshold        0 (key-value separation disabled)
//	ValueLogSegmentSize   64 MiB
//	ValueLogGCRatio       0.5
type Options struct {
	// Path is the database directory on the local filesystem. When empty,
	// the store runs on a volatile in-memory filesystem (tests, caches,
	// benchmarks).
	Path string

	// Shards, when >= 1, opens the store horizontally sharded: keys are
	// hash-partitioned across this many fully independent engines (each
	// with its own memtable, WAL, levels, and scheduler), removing the
	// single-store write chokepoints and cutting compaction write
	// amplification. A global memory governor shifts memtable quota
	// between shards and the shared block cache under skewed load. The
	// shard count is part of the on-disk layout and must match on every
	// reopen. Zero (the default) opens a single unsharded engine.
	// Sharding cannot be combined with LinearizableSnapshots (there is
	// no cross-shard timestamp). See docs/SHARDING.md.
	Shards int

	// MemtableSize is the in-memory component's spill threshold in bytes.
	// Default 4 MiB (the paper's serving configuration uses 128 MiB; see
	// the Fig. 8 benchmark for the effect of this knob). Under sharding
	// this is each shard's initial budget; the governor rebalances from
	// there.
	MemtableSize int64

	// BlockCacheSize bounds the SSTable block cache in bytes (default 32 MiB).
	BlockCacheSize int64

	// SyncWrites makes every write wait for WAL durability. Default
	// false: asynchronous group logging, which allows writes at memory
	// speed at the risk of losing the last few writes in a crash.
	SyncWrites bool

	// DisableWAL turns off logging entirely. Data not yet flushed to
	// sorted tables is lost on restart. For caches and benchmarks.
	DisableWAL bool

	// LinearizableSnapshots trades snapshot acquisition latency for
	// linearizability: the snapshot is guaranteed to include every write
	// completed before GetSnapshot was called. The default (false) gives
	// serializable snapshots that may be slightly in the past.
	LinearizableSnapshots bool

	// CompactionThreads is the number of background compaction workers
	// (default 1).
	CompactionThreads int

	// SnapshotTTL, when positive, reclaims snapshot handles the
	// application forgot to Close after this duration; reads on a
	// reclaimed handle fail with ErrSnapshotExpired.
	SnapshotTTL time.Duration

	// Compression enables DEFLATE compression of on-disk table blocks.
	Compression bool

	// EventSink, when set, receives every engine trace event (flushes,
	// compactions, write stalls, snapshot reclaims) synchronously. See
	// WithObserver and the Observer returned by DB.Observer.
	EventSink EventSink

	// OnHealthChange, when set, receives every health state transition
	// (Healthy/Degraded/ReadOnly/Failed) one at a time, in commit order —
	// the hook for alerting on background faults. It runs on an engine
	// goroutine and must not call back into the store. See DB.Health.
	OnHealthChange func(HealthChange)

	// WriteRateLimit, when positive, caps admitted write volume at this
	// many bytes per second: the admission token bucket stays permanently
	// active at (at most) this rate, and the background auto-tuner can only
	// lower it while flush/compaction debt demands it. Zero (the default)
	// means no cap — the throttle engages only under backlog. See
	// docs/SCHEDULING.md.
	WriteRateLimit int64

	// SchedulerProfile selects the background scheduler and write-throttle
	// tuning preset: "default" (balanced), "throughput" (gentle decay, fast
	// recovery), "latency" (hard decay, cautious recovery), or "legacy"
	// (the historical binary L0 slowdown/stop gate, no auto-tuning — kept
	// for A/B measurement). Empty selects "default". Open rejects unknown
	// names with ErrInvalidOptions.
	SchedulerProfile string

	// L0CompactionTrigger is the L0 file count that triggers a
	// background compaction. L0SlowdownTrigger and L0StopTrigger feed the
	// write-admission controller: between them the throttle decays
	// multiplicatively, past the stop trigger it decays hard (under the
	// "legacy" profile they instead gate writers with LevelDB's binary
	// pause/stop behavior).
	L0CompactionTrigger int
	L0SlowdownTrigger   int
	L0StopTrigger       int

	// BaseLevelBytes, TableFileSize, BlockSize and BloomBitsPerKey shape
	// the disk component; zero values pick LevelDB-compatible defaults.
	BaseLevelBytes  int64
	TableFileSize   int64
	BlockSize       int
	BloomBitsPerKey int

	// ValueThreshold, when positive, separates keys from large values
	// (docs/VALUELOG.md): values of at least this many bytes are written
	// once to an append-only segmented value log and the LSM stores a
	// fixed-size pointer, so compactions stop rewriting the value bytes.
	// Values below the threshold keep the inline path unchanged. Zero (the
	// default) disables separation. Must be no larger than MemtableSize;
	// combining it with DisableWAL+SyncWrites is rejected (there is no log
	// to make the pointers durable).
	ValueThreshold int

	// ValueLogSegmentSize is the rotation size of value-log segments in
	// bytes (default 64 MiB). Larger segments amortize file overhead;
	// smaller ones give garbage collection finer reclamation units.
	ValueLogSegmentSize int64

	// ValueLogGCRatio is the garbage fraction (0, 1] at which a sealed
	// value-log segment becomes a GC rewrite candidate (default 0.5).
	// Lower values reclaim space sooner at the cost of more rewrite I/O.
	ValueLogGCRatio float64
}

// Option mutates Options; see OpenPath. The With* constructors cover the
// common knobs; anything else is reachable by opening with the struct
// form, which is equivalent.
type Option func(*Options)

// WithShards opens the store hash-partitioned across n independent
// engines (see Options.Shards and docs/SHARDING.md). n must be at
// least 1; smaller values make Open fail with ErrInvalidOptions.
func WithShards(n int) Option {
	return func(o *Options) {
		if n < 1 {
			// Remember the invalid request (the zero value means
			// "unsharded", so it cannot carry the error to Open).
			o.Shards = -1
			return
		}
		o.Shards = n
	}
}

// WithMemtableSize sets the memtable spill threshold in bytes.
func WithMemtableSize(n int64) Option {
	return func(o *Options) { o.MemtableSize = n }
}

// WithBlockCacheSize bounds the SSTable block cache in bytes.
func WithBlockCacheSize(n int64) Option {
	return func(o *Options) { o.BlockCacheSize = n }
}

// WithSyncWrites makes every write wait for WAL durability.
func WithSyncWrites(on bool) Option {
	return func(o *Options) { o.SyncWrites = on }
}

// WithDisableWAL turns off write-ahead logging entirely.
func WithDisableWAL(on bool) Option {
	return func(o *Options) { o.DisableWAL = on }
}

// WithCompression enables DEFLATE compression of on-disk table blocks.
func WithCompression(on bool) Option {
	return func(o *Options) { o.Compression = on }
}

// WithCompactionThreads sets the number of background compaction workers.
func WithCompactionThreads(n int) Option {
	return func(o *Options) { o.CompactionThreads = n }
}

// WithSnapshotTTL reclaims forgotten snapshot handles after d.
func WithSnapshotTTL(d time.Duration) Option {
	return func(o *Options) { o.SnapshotTTL = d }
}

// WithLinearizableSnapshots makes GetSnapshot linearizable at the cost of
// a (short) blocking acquisition.
func WithLinearizableSnapshots(on bool) Option {
	return func(o *Options) { o.LinearizableSnapshots = on }
}

// WithWriteRateLimit caps admitted write volume at n bytes per second
// (0 = no cap; see Options.WriteRateLimit).
func WithWriteRateLimit(n int64) Option {
	return func(o *Options) { o.WriteRateLimit = n }
}

// WithSchedulerProfile selects the background scheduler and write-throttle
// tuning preset: "default", "throughput", "latency", or "legacy" (see
// Options.SchedulerProfile).
func WithSchedulerProfile(name string) Option {
	return func(o *Options) { o.SchedulerProfile = name }
}

// WithL0Triggers sets the L0 file-count thresholds: compaction kicks in
// at compact files, writers slow down at slowdown and stop at stop. Zero
// values keep the defaults (4, 8, 12).
func WithL0Triggers(compact, slowdown, stop int) Option {
	return func(o *Options) {
		o.L0CompactionTrigger = compact
		o.L0SlowdownTrigger = slowdown
		o.L0StopTrigger = stop
	}
}

// WithObserver installs sink as the engine event callback: it receives
// every flush, compaction, write-stall and snapshot-reclaim event
// synchronously, in order. Latency histograms and counters are always
// collected regardless and are reachable via DB.Observer.
func WithObserver(sink EventSink) Option {
	return func(o *Options) { o.EventSink = sink }
}

// WithHealthChange installs fn as the health transition callback: it fires
// when the store degrades on a transient background fault, quarantines
// read-only on corruption, fails fatally, or resumes to Healthy.
func WithHealthChange(fn func(HealthChange)) Option {
	return func(o *Options) { o.OnHealthChange = fn }
}

// WithValueThreshold separates values of at least n bytes into the
// segmented value log (0 disables separation; see Options.ValueThreshold
// and docs/VALUELOG.md).
func WithValueThreshold(n int) Option {
	return func(o *Options) { o.ValueThreshold = n }
}

// WithValueLogSegmentSize sets the value-log segment rotation size in
// bytes (see Options.ValueLogSegmentSize).
func WithValueLogSegmentSize(n int64) Option {
	return func(o *Options) { o.ValueLogSegmentSize = n }
}

// WithValueLogGCRatio sets the garbage fraction at which a value-log
// segment is rewritten (see Options.ValueLogGCRatio).
func WithValueLogGCRatio(f float64) Option {
	return func(o *Options) { o.ValueLogGCRatio = f }
}

// engineOptions lowers the public Options onto core options. It is the
// single delegation path shared by Open and OpenPath, so the two
// constructors cannot drift (asserted by TestOpenPathEquivalence).
func (o Options) engineOptions(fs storage.FS, observer *obs.Observer) core.Options {
	return core.Options{
		FS:                    fs,
		MemtableSize:          o.MemtableSize,
		BlockCacheSize:        o.BlockCacheSize,
		SyncWrites:            o.SyncWrites,
		DisableWAL:            o.DisableWAL,
		LinearizableSnapshots: o.LinearizableSnapshots,
		SnapshotTTL:           o.SnapshotTTL,
		CompactionThreads:     o.CompactionThreads,
		L0SlowdownTrigger:     o.L0SlowdownTrigger,
		L0StopTrigger:         o.L0StopTrigger,
		WriteRateLimit:        o.WriteRateLimit,
		SchedulerProfile:      o.SchedulerProfile,
		OnHealthChange:        o.OnHealthChange,
		Observer:              observer,
		ValueThreshold:        o.ValueThreshold,
		ValueLogSegmentSize:   o.ValueLogSegmentSize,
		ValueLogGCRatio:       o.ValueLogGCRatio,
		Disk: version.Options{
			L0CompactionTrigger: o.L0CompactionTrigger,
			BaseLevelBytes:      o.BaseLevelBytes,
			TableFileSize:       o.TableFileSize,
			BlockSize:           o.BlockSize,
			BloomBitsPerKey:     o.BloomBitsPerKey,
			Compress:            o.Compression,
		},
	}
}
