package clsmclient_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"clsm/clsmclient"
	"clsm/internal/core"
	"clsm/internal/server"
	"clsm/internal/wire"
)

// coreEngine adapts a bare *core.DB to server.Engine (the server wants
// its iterator interface, core returns the concrete type).
type coreEngine struct{ *core.DB }

func (e coreEngine) NewIterator(opts ...core.IterOptions) (server.Iterator, error) {
	it, err := e.DB.NewIterator(opts...)
	if err != nil {
		return nil, err
	}
	return it, nil
}

func startServer(t *testing.T) (addr string, db *core.DB) {
	t.Helper()
	db, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(coreEngine{db}, server.Config{})
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return ln.Addr().String(), db
}

// TestSharedConnectionPipelining: many goroutines multiplex one
// connection (pool size 1); every request gets its own id and every
// response routes back to its caller.
func TestSharedConnectionPipelining(t *testing.T) {
	addr, _ := startServer(t)
	c, err := clsmclient.Dial(addr, clsmclient.WithPoolSize(1), clsmclient.WithMaxInflight(128))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	const goroutines = 32
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := []byte(fmt.Sprintf("key-%02d", g))
			want := fmt.Sprintf("val-%02d", g)
			for i := 0; i < 50; i++ {
				if err := c.Put(ctx, k, []byte(want)); err != nil {
					errCh <- err
					return
				}
				got, ok, err := c.Get(ctx, k)
				if err != nil {
					errCh <- err
					return
				}
				// Responses arrive out of order across goroutines; each
				// caller must still see exactly its own answer.
				if !ok || string(got) != want {
					errCh <- fmt.Errorf("goroutine %d read %q, want %q", g, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestContextCancellation: a canceled call returns promptly with the
// context error and does not poison the session for later calls.
func TestContextCancellation(t *testing.T) {
	addr, _ := startServer(t)
	c, err := clsmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Put(canceled, []byte("k"), []byte("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Put = %v, want context.Canceled", err)
	}

	expired, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond)
	if _, _, err := c.Get(expired, []byte("k")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired Get = %v, want context.DeadlineExceeded", err)
	}

	// The session is intact: a live-context call still works.
	if err := c.Put(context.Background(), []byte("k"), []byte("v2")); err != nil {
		t.Fatalf("Put after cancellations: %v", err)
	}
	v, ok, err := c.Get(context.Background(), []byte("k"))
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("Get after cancellations = %q,%v,%v", v, ok, err)
	}
}

// TestReconnectAfterServerRestart: a broken connection fails in-flight
// calls with a transport error, and the next call on the client redials
// transparently.
func TestReconnectAfterServerRestart(t *testing.T) {
	db, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := server.New(coreEngine{db}, server.Config{})
	go srv.Serve(ln)

	c, err := clsmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Put(ctx, []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Kill the server; the client's next call must fail (transport, not
	// remote) ...
	srv.Close()
	if err := c.Put(ctx, []byte("k"), []byte("v2")); err == nil {
		t.Fatal("Put succeeded against a closed server")
	} else {
		var re *wire.Error
		if errors.As(err, &re) {
			t.Fatalf("expected a transport error, got remote %v", err)
		}
	}

	// ... and once the server is back on the same address, the client
	// redials on its own.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("ephemeral port %s reused: %v", addr, err)
	}
	srv2 := server.New(coreEngine{db}, server.Config{})
	go srv2.Serve(ln2)
	defer srv2.Close()

	if err := c.Put(ctx, []byte("k"), []byte("v3")); err != nil {
		t.Fatalf("Put after server restart: %v", err)
	}
	v, ok, err := c.Get(ctx, []byte("k"))
	if err != nil || !ok || string(v) != "v3" {
		t.Fatalf("Get after restart = %q,%v,%v", v, ok, err)
	}
}

// TestStatus: the remote status call reports health and a non-empty
// observability snapshot.
func TestStatus(t *testing.T) {
	addr, _ := startServer(t)
	c, err := clsmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Health != 0 {
		t.Fatalf("health = %d, want healthy (0): %s", st.Health, st.HealthMsg)
	}
	if len(st.Obs) == 0 || st.Obs[0] != '{' {
		t.Fatalf("obs snapshot not JSON: %q", st.Obs)
	}
}

// TestTxnWrite: the single-round-trip remote transaction — commit when
// the read observations hold, a wrapped ErrTxnConflict with its errors.Is
// identity intact when they don't, and no auto-retry of conflicts even
// under a retry policy.
func TestTxnWrite(t *testing.T) {
	addr, db := startServer(t)
	// A retry policy must NOT mask conflicts: the conflict path below
	// would succeed on retry if the client blindly resent after re-reads.
	c, err := clsmclient.Dial(addr, clsmclient.WithRetry(4, time.Millisecond, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.Put(ctx, []byte("acct"), []byte("100")); err != nil {
		t.Fatal(err)
	}

	// Valid observation → commit, atomically, both entries.
	var b clsmclient.Batch
	b.Put([]byte("acct"), []byte("90"))
	b.Put([]byte("audit"), []byte("-10"))
	checks := []clsmclient.ReadExpect{{Key: []byte("acct"), Value: []byte("100"), Exists: true}}
	if err := c.TxnWrite(ctx, checks, &b); err != nil {
		t.Fatalf("TxnWrite with valid checks: %v", err)
	}
	v, ok, _ := c.Get(ctx, []byte("acct"))
	if !ok || string(v) != "90" {
		t.Fatalf("acct = %q,%v after txn", v, ok)
	}

	// Stale observation → conflict with sentinel identity across the wire.
	b.Reset()
	b.Put([]byte("acct"), []byte("80"))
	start := time.Now()
	err = c.TxnWrite(ctx, checks, &b) // still claims acct=100
	if !errors.Is(err, core.ErrTxnConflict) {
		t.Fatalf("stale TxnWrite = %v, want ErrTxnConflict identity", err)
	}
	// Conflicts are not transient: the retry policy must not have burned
	// its backoff schedule on a deterministic failure.
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("conflict took %v — it was retried", d)
	}
	if v, _, _ := c.Get(ctx, []byte("acct")); string(v) != "90" {
		t.Fatalf("conflicted txn leaked a write: acct = %q", v)
	}

	// Observation of absence: commits only while the key stays absent.
	b.Reset()
	b.Put([]byte("once"), []byte("init"))
	absent := []clsmclient.ReadExpect{{Key: []byte("once"), Exists: false}}
	if err := c.TxnWrite(ctx, absent, &b); err != nil {
		t.Fatalf("TxnWrite claiming absence: %v", err)
	}
	if err := c.TxnWrite(ctx, absent, &b); !errors.Is(err, core.ErrTxnConflict) {
		t.Fatalf("second absence claim = %v, want conflict", err)
	}

	// The engine saw real transactions, not plain writes.
	if m := db.Metrics(); m.Txns < 2 || m.TxnConflicts < 2 {
		t.Fatalf("metrics = %d txns / %d conflicts, want >=2 / >=2", m.Txns, m.TxnConflicts)
	}
}

// TestTxnWriteRetryLoop: concurrent clients increment one counter through
// the re-read/rebuild/resend loop the TxnWrite docs prescribe; no lost
// updates despite constant conflicts.
func TestTxnWriteRetryLoop(t *testing.T) {
	addr, _ := startServer(t)
	ctx := context.Background()
	const clients, perClient = 4, 25
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := clsmclient.Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				for {
					v, ok, err := c.Get(ctx, []byte("counter"))
					if err != nil {
						errCh <- err
						return
					}
					n := 0
					if ok {
						fmt.Sscanf(string(v), "%d", &n)
					}
					var b clsmclient.Batch
					b.Put([]byte("counter"), []byte(fmt.Sprintf("%d", n+1)))
					err = c.TxnWrite(ctx,
						[]clsmclient.ReadExpect{{Key: []byte("counter"), Value: v, Exists: ok}}, &b)
					if err == nil {
						break
					}
					if !errors.Is(err, core.ErrTxnConflict) {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	check, err := clsmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	v, ok, err := check.Get(ctx, []byte("counter"))
	if err != nil || !ok || string(v) != fmt.Sprintf("%d", clients*perClient) {
		t.Fatalf("counter = %q,%v,%v, want %d", v, ok, err, clients*perClient)
	}
}

// TestDialFailure: an unreachable address fails Dial with a useful error.
func TestDialFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here now
	if _, err := clsmclient.Dial(addr, clsmclient.WithDialTimeout(time.Second)); err == nil {
		t.Fatal("Dial to dead address succeeded")
	}
}

// TestClientClosed: calls after Close fail with ErrClientClosed.
func TestClientClosed(t *testing.T) {
	addr, _ := startServer(t)
	c, err := clsmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Put(context.Background(), []byte("k"), []byte("v")); !errors.Is(err, clsmclient.ErrClientClosed) {
		t.Fatalf("Put after Close = %v, want ErrClientClosed", err)
	}
}
