package clsmclient_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"clsm/clsmclient"
	"clsm/internal/core"
	"clsm/internal/server"
	"clsm/internal/wire"
)

// coreEngine adapts a bare *core.DB to server.Engine (the server wants
// its iterator interface, core returns the concrete type).
type coreEngine struct{ *core.DB }

func (e coreEngine) NewIterator(opts ...core.IterOptions) (server.Iterator, error) {
	it, err := e.DB.NewIterator(opts...)
	if err != nil {
		return nil, err
	}
	return it, nil
}

func startServer(t *testing.T) (addr string, db *core.DB) {
	t.Helper()
	db, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(coreEngine{db}, server.Config{})
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return ln.Addr().String(), db
}

// TestSharedConnectionPipelining: many goroutines multiplex one
// connection (pool size 1); every request gets its own id and every
// response routes back to its caller.
func TestSharedConnectionPipelining(t *testing.T) {
	addr, _ := startServer(t)
	c, err := clsmclient.Dial(addr, clsmclient.WithPoolSize(1), clsmclient.WithMaxInflight(128))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	const goroutines = 32
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := []byte(fmt.Sprintf("key-%02d", g))
			want := fmt.Sprintf("val-%02d", g)
			for i := 0; i < 50; i++ {
				if err := c.Put(ctx, k, []byte(want)); err != nil {
					errCh <- err
					return
				}
				got, ok, err := c.Get(ctx, k)
				if err != nil {
					errCh <- err
					return
				}
				// Responses arrive out of order across goroutines; each
				// caller must still see exactly its own answer.
				if !ok || string(got) != want {
					errCh <- fmt.Errorf("goroutine %d read %q, want %q", g, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestContextCancellation: a canceled call returns promptly with the
// context error and does not poison the session for later calls.
func TestContextCancellation(t *testing.T) {
	addr, _ := startServer(t)
	c, err := clsmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Put(canceled, []byte("k"), []byte("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Put = %v, want context.Canceled", err)
	}

	expired, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond)
	if _, _, err := c.Get(expired, []byte("k")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired Get = %v, want context.DeadlineExceeded", err)
	}

	// The session is intact: a live-context call still works.
	if err := c.Put(context.Background(), []byte("k"), []byte("v2")); err != nil {
		t.Fatalf("Put after cancellations: %v", err)
	}
	v, ok, err := c.Get(context.Background(), []byte("k"))
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("Get after cancellations = %q,%v,%v", v, ok, err)
	}
}

// TestReconnectAfterServerRestart: a broken connection fails in-flight
// calls with a transport error, and the next call on the client redials
// transparently.
func TestReconnectAfterServerRestart(t *testing.T) {
	db, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := server.New(coreEngine{db}, server.Config{})
	go srv.Serve(ln)

	c, err := clsmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Put(ctx, []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Kill the server; the client's next call must fail (transport, not
	// remote) ...
	srv.Close()
	if err := c.Put(ctx, []byte("k"), []byte("v2")); err == nil {
		t.Fatal("Put succeeded against a closed server")
	} else {
		var re *wire.Error
		if errors.As(err, &re) {
			t.Fatalf("expected a transport error, got remote %v", err)
		}
	}

	// ... and once the server is back on the same address, the client
	// redials on its own.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("ephemeral port %s reused: %v", addr, err)
	}
	srv2 := server.New(coreEngine{db}, server.Config{})
	go srv2.Serve(ln2)
	defer srv2.Close()

	if err := c.Put(ctx, []byte("k"), []byte("v3")); err != nil {
		t.Fatalf("Put after server restart: %v", err)
	}
	v, ok, err := c.Get(ctx, []byte("k"))
	if err != nil || !ok || string(v) != "v3" {
		t.Fatalf("Get after restart = %q,%v,%v", v, ok, err)
	}
}

// TestStatus: the remote status call reports health and a non-empty
// observability snapshot.
func TestStatus(t *testing.T) {
	addr, _ := startServer(t)
	c, err := clsmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Health != 0 {
		t.Fatalf("health = %d, want healthy (0): %s", st.Health, st.HealthMsg)
	}
	if len(st.Obs) == 0 || st.Obs[0] != '{' {
		t.Fatalf("obs snapshot not JSON: %q", st.Obs)
	}
}

// TestDialFailure: an unreachable address fails Dial with a useful error.
func TestDialFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here now
	if _, err := clsmclient.Dial(addr, clsmclient.WithDialTimeout(time.Second)); err == nil {
		t.Fatal("Dial to dead address succeeded")
	}
}

// TestClientClosed: calls after Close fail with ErrClientClosed.
func TestClientClosed(t *testing.T) {
	addr, _ := startServer(t)
	c, err := clsmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Put(context.Background(), []byte("k"), []byte("v")); !errors.Is(err, clsmclient.ErrClientClosed) {
		t.Fatalf("Put after Close = %v, want ErrClientClosed", err)
	}
}
