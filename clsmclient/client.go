// Package clsmclient is the Go client for a remote clsm store served by
// cmd/clsm-server. It speaks the pipelined binary protocol of
// docs/NETWORK.md and is safe for concurrent use by any number of
// goroutines — concurrency is the point: every in-flight request rides
// the same small pool of connections with its own request id, so N
// goroutines calling Put concurrently cost one round trip each without
// waiting for one another, and the server merges them into shared group
// commits.
//
//	c, err := clsmclient.Dial("localhost:4377",
//		clsmclient.WithMaxInflight(512),
//		clsmclient.WithRetry(4, 10*time.Millisecond, time.Second))
//	if err != nil { ... }
//	defer c.Close()
//
//	err = c.Put(ctx, []byte("k"), []byte("v"))
//	v, ok, err := c.Get(ctx, []byte("k"))
//
// Remote engine errors keep their identity across the wire:
// errors.Is(err, clsm.ErrReadOnly), clsm.ErrDegraded, clsm.ErrClosed,
// and the rest work exactly as they do in-process.
package clsmclient

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"time"

	"clsm/internal/wire"
)

// ErrClientClosed is returned by every call after Close.
var ErrClientClosed = errors.New("clsmclient: client closed")

// Option configures a Client at Dial time.
type Option func(*config)

type config struct {
	dialTimeout time.Duration
	maxInflight int
	poolSize    int

	retryAttempts int
	retryBase     time.Duration
	retryMax      time.Duration
}

// WithDialTimeout bounds each TCP connect (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(c *config) { c.dialTimeout = d }
}

// WithMaxInflight caps the client's total in-flight requests (default
// 256). Calls beyond the cap wait for a slot; the cap is what turns a
// burst of goroutines into a deep, bounded pipeline instead of unbounded
// memory growth.
func WithMaxInflight(n int) Option {
	return func(c *config) { c.maxInflight = n }
}

// WithPoolSize sets how many TCP connections the client spreads requests
// over (default 1). One pipelined connection usually saturates a server;
// more help past single-stream TCP limits.
func WithPoolSize(n int) Option {
	return func(c *config) { c.poolSize = n }
}

// WithRetry makes every call retry up to attempts times on transient
// failures — broken/unreachable connections and remote ErrDegraded (the
// store auto-resumes when its background retry succeeds) — sleeping a
// jittered exponential backoff between tries, base doubling up to max.
// Non-transient remote errors (ErrReadOnly, ErrClosed, ErrInvalidOptions,
// bad requests) never retry. Retrying writes is safe because every clsm
// write is last-writer-wins idempotent: reapplying the same Put/Delete/
// batch converges to the same state.
func WithRetry(attempts int, base, max time.Duration) Option {
	return func(c *config) {
		c.retryAttempts = attempts
		c.retryBase = base
		c.retryMax = max
	}
}

// Client is a handle on a remote store. Create with Dial; all methods
// are safe for concurrent use.
type Client struct {
	addr string
	cfg  config

	inflight chan struct{} // client-wide in-flight slots
	sessions []*sessionSlot

	closed chan struct{}
}

// Dial connects to a clsm-server at addr. The first connection is
// established eagerly so configuration and reachability errors surface
// here; pool connections beyond the first dial lazily.
func Dial(addr string, opts ...Option) (*Client, error) {
	cfg := config{
		dialTimeout: 5 * time.Second,
		maxInflight: 256,
		poolSize:    1,
	}
	for _, apply := range opts {
		apply(&cfg)
	}
	if cfg.poolSize < 1 || cfg.maxInflight < 1 || cfg.retryAttempts < 0 {
		return nil, errors.New("clsmclient: options must be positive")
	}
	c := &Client{
		addr:     addr,
		cfg:      cfg,
		inflight: make(chan struct{}, cfg.maxInflight),
		sessions: make([]*sessionSlot, cfg.poolSize),
		closed:   make(chan struct{}),
	}
	for i := range c.sessions {
		c.sessions[i] = &sessionSlot{}
	}
	if _, err := c.sessions[0].get(c); err != nil {
		return nil, err
	}
	return c, nil
}

// Close severs every connection and fails all in-flight calls with a
// connection error. The client is unusable afterwards.
func (c *Client) Close() error {
	select {
	case <-c.closed:
		return nil
	default:
	}
	close(c.closed)
	for _, slot := range c.sessions {
		slot.close()
	}
	return nil
}

// ---- public operations ----

// Put stores (key, value) on the remote store.
func (c *Client) Put(ctx context.Context, key, value []byte) error {
	_, err := c.call(ctx, wire.OpPut, wire.AppendPut(nil, key, value))
	return err
}

// Get returns the current remote value of key; ok is false when the key
// is absent (absence is not an error, mirroring clsm.DB.Get).
func (c *Client) Get(ctx context.Context, key []byte) (value []byte, ok bool, err error) {
	body, err := c.call(ctx, wire.OpGet, wire.AppendKey(nil, key))
	if err != nil {
		return nil, false, err
	}
	return wire.DecodeGetReply(body)
}

// Delete removes key from the remote store.
func (c *Client) Delete(ctx context.Context, key []byte) error {
	_, err := c.call(ctx, wire.OpDelete, wire.AppendKey(nil, key))
	return err
}

// Value is one MultiGet result: the data and whether the key existed.
type Value struct {
	Data   []byte
	Exists bool
}

// MultiGet reads every key in one round trip; results[i] corresponds to
// keys[i], absence reported per key through Value.Exists. The server
// executes it as a single engine MultiGet, so the batch is mutually
// consistent.
func (c *Client) MultiGet(ctx context.Context, keys [][]byte) ([]Value, error) {
	body, err := c.call(ctx, wire.OpMultiGet, wire.AppendKeys(nil, keys))
	if err != nil {
		return nil, err
	}
	wvals, err := wire.DecodeValues(body)
	if err != nil {
		return nil, err
	}
	vals := make([]Value, len(wvals))
	for i, v := range wvals {
		vals[i] = Value{Data: v.Data, Exists: v.Exists}
	}
	return vals, nil
}

// Batch is an ordered set of writes applied atomically by Client.Write —
// the remote analogue of clsm.Batch.
type Batch struct {
	entries []wire.Entry
}

// Put queues a write of (key, value) in the batch.
func (b *Batch) Put(key, value []byte) {
	b.entries = append(b.entries, wire.Entry{Key: key, Value: value})
}

// Delete queues a deletion of key in the batch.
func (b *Batch) Delete(key []byte) {
	b.entries = append(b.entries, wire.Entry{Delete: true, Key: key})
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.entries) }

// Reset empties the batch for reuse.
func (b *Batch) Reset() { b.entries = b.entries[:0] }

// Write applies the batch atomically on the remote store: concurrent
// readers see all of it or none of it. An empty batch is a no-op.
func (c *Client) Write(ctx context.Context, b *Batch) error {
	_, err := c.call(ctx, wire.OpWrite, wire.AppendWrite(nil, b.entries))
	return err
}

// ReadExpect is one read observation carried by TxnWrite: the caller read
// Key and saw Value (or absence, Exists=false), and asks the server to
// commit only if that observation still holds.
type ReadExpect struct {
	Key    []byte
	Value  []byte
	Exists bool
}

// TxnWrite commits the batch only if every read observation still holds —
// a single-round-trip optimistic transaction (the protocol is stateless,
// so validation is by value, not by snapshot timestamp). A failed check
// or a commit-time conflict returns an error with clsm.ErrTxnConflict
// identity; conflicts are deliberately never auto-retried (resending the
// identical request re-fails by construction) — re-read the keys, rebuild
// the request, and call again:
//
//	for {
//		v, ok, err := c.Get(ctx, key)
//		if err != nil { return err }
//		var b clsmclient.Batch
//		b.Put(key, bump(v))
//		err = c.TxnWrite(ctx, []clsmclient.ReadExpect{{Key: key, Value: v, Exists: ok}}, &b)
//		if !errors.Is(err, clsm.ErrTxnConflict) { return err }
//	}
//
// Under WithRetry, connection failures are still retried; if the lost
// reply was a success, the retry either re-commits the identical batch
// (idempotent) or reports a conflict against the first attempt's own
// writes — a conflict after a connection retry can therefore mean "already
// committed", and the re-read loop above handles both the same way.
// On a sharded server every key must route to one shard; cross-shard
// requests fail with clsm.ErrInvalidOptions.
func (c *Client) TxnWrite(ctx context.Context, reads []ReadExpect, b *Batch) error {
	wr := make([]wire.ReadExpect, len(reads))
	for i, r := range reads {
		wr[i] = wire.ReadExpect{Key: r.Key, Value: r.Value, Exists: r.Exists}
	}
	var entries []wire.Entry
	if b != nil {
		entries = b.entries
	}
	_, err := c.call(ctx, wire.OpTxnWrite, wire.AppendTxnWrite(nil, wr, entries))
	return err
}

// KV is one Scan result pair.
type KV struct {
	Key, Value []byte
}

// Scan returns up to limit pairs in ascending key order starting at
// start (inclusive; nil starts at the first key), read from one
// consistent remote snapshot.
func (c *Client) Scan(ctx context.Context, start []byte, limit int) ([]KV, error) {
	body, err := c.call(ctx, wire.OpScan, wire.AppendScan(nil, start, limit))
	if err != nil {
		return nil, err
	}
	pairs, err := wire.DecodePairs(body)
	if err != nil {
		return nil, err
	}
	kvs := make([]KV, len(pairs))
	for i, p := range pairs {
		kvs[i] = KV{Key: p.Key, Value: p.Value}
	}
	return kvs, nil
}

// Status is the remote store's health and observability snapshot.
type Status struct {
	// Health is the engine health state (clsm.Healthy, Degraded,
	// ReadOnly, Failed) as its numeric value.
	Health uint8
	// HealthMsg is the background error behind a non-healthy state.
	HealthMsg string
	// Obs is the JSON observability snapshot (obs.Snapshot): op
	// latencies, cache/WAL/compaction counters, server batch histograms.
	Obs []byte
}

// Status fetches the server's health state and observability snapshot.
func (c *Client) Status(ctx context.Context) (Status, error) {
	body, err := c.call(ctx, wire.OpStats, nil)
	if err != nil {
		return Status{}, err
	}
	st, err := wire.DecodeStatus(body)
	if err != nil {
		return Status{}, err
	}
	return Status{Health: st.Health, HealthMsg: st.HealthMsg, Obs: st.Obs}, nil
}

// ---- request execution ----

// call runs one request with the configured retry policy.
func (c *Client) call(ctx context.Context, op wire.Op, payload []byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		body, err := c.callOnce(ctx, op, payload)
		if err == nil {
			return body, nil
		}
		lastErr = err
		if attempt >= c.cfg.retryAttempts || !transient(err) || ctx.Err() != nil {
			return nil, lastErr
		}
		if err := sleep(ctx, c.backoff(attempt)); err != nil {
			return nil, lastErr
		}
	}
}

// transient reports whether err is worth retrying: connection failures
// and remote codes the protocol marks transient (degraded).
func transient(err error) bool {
	var re *wire.Error
	if errors.As(err, &re) {
		return re.Code.Transient()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrClientClosed) {
		return false
	}
	return true // dial errors, broken sessions, torn frames
}

// backoff is the jittered exponential delay before retry attempt+1.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.retryBase << attempt
	if d > c.cfg.retryMax || d <= 0 {
		d = c.cfg.retryMax
	}
	if d <= 0 {
		return 0
	}
	// Full jitter in [d/2, d): concurrent retriers decorrelate.
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// callOnce executes one request over one session: acquire an in-flight
// slot, pick a pool session (dialing if its connection is down), send
// the frame, and wait for the response with this request's id.
func (c *Client) callOnce(ctx context.Context, op wire.Op, payload []byte) ([]byte, error) {
	// Fast path first: a plain buffered send skips the full select
	// machinery, which matters at pipelined rates.
	select {
	case c.inflight <- struct{}{}:
	default:
		select {
		case c.inflight <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.closed:
			return nil, ErrClientClosed
		}
	}
	defer func() { <-c.inflight }()

	slot := c.pick()
	sess, err := slot.get(c)
	if err != nil {
		return nil, err
	}
	id, ch := sess.register()
	frame := wire.AppendFrame(nil, id, byte(op), payload)
	if err := sess.send(ctx, frame); err != nil {
		sess.deregister(id)
		return nil, err
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, res.err
		}
		code := wire.ErrorCode(res.status)
		if code != wire.CodeOK {
			return nil, wire.RemoteError(code, string(res.payload))
		}
		return res.payload, nil
	case <-ctx.Done():
		// The response may still arrive; the session drops it on the
		// floor when no waiter is registered.
		sess.deregister(id)
		return nil, ctx.Err()
	case <-c.closed:
		sess.deregister(id)
		return nil, ErrClientClosed
	}
}

// pick spreads calls over the pool round-robin-by-goroutine: cheap and
// good enough, since any session pipelines arbitrarily deep.
func (c *Client) pick() *sessionSlot {
	if len(c.sessions) == 1 {
		return c.sessions[0]
	}
	return c.sessions[int(rand.Uint32N(uint32(len(c.sessions))))]
}

// dial opens one protocol connection.
func (c *Client) dial() (net.Conn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.cfg.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("clsmclient: dial %s: %w", c.addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // pipelined frames must not wait for ACKs
	}
	return nc, nil
}
