package clsmclient

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"

	"clsm/internal/wire"
)

// sessionSlot is one pool position: it holds the live session and
// replaces it (lazily, on next use) after the connection breaks.
type sessionSlot struct {
	mu   sync.Mutex
	sess *session
}

// get returns the slot's live session, dialing a replacement when the
// current one is broken or absent.
func (s *sessionSlot) get(c *Client) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sess != nil && !s.sess.broken() {
		return s.sess, nil
	}
	select {
	case <-c.closed:
		return nil, ErrClientClosed
	default:
	}
	nc, err := c.dial()
	if err != nil {
		return nil, err
	}
	s.sess = newSession(nc)
	return s.sess, nil
}

func (s *sessionSlot) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sess != nil {
		s.sess.fail(ErrClientClosed)
	}
}

// result is one response delivered to a waiting call.
type result struct {
	status  byte
	payload []byte
	err     error // session-level failure; status/payload are invalid
}

// session is one pipelined protocol connection. Writes use a combining
// buffer: a sender appends its frame under the lock, and whichever
// sender finds no flusher active becomes the flusher, writing everything
// queued (its own frame and everyone else's) in single syscalls until
// the buffer drains. Concurrent senders therefore batch into few TCP
// writes with no dedicated writer goroutine and no handoff wakeups. A
// reader goroutine dispatches responses to waiters by request id.
type session struct {
	nc net.Conn

	wmu     sync.Mutex
	wbuf    []byte // frames queued to write, guarded by wmu
	wspare  []byte // recycled buffer for the next fill
	writing bool   // a flusher is draining wbuf

	mu      sync.Mutex
	pending map[uint64]chan result
	nextID  uint64
	err     error // non-nil once the session is broken

	done chan struct{} // closed when the session breaks
}

func newSession(nc net.Conn) *session {
	s := &session{
		nc:      nc,
		pending: make(map[uint64]chan result),
		done:    make(chan struct{}),
	}
	go s.readLoop()
	return s
}

func (s *session) broken() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// register allocates a request id and its response channel.
func (s *session) register() (uint64, chan result) {
	ch := make(chan result, 1)
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.pending[id] = ch
	s.mu.Unlock()
	return id, ch
}

// deregister abandons a request (context cancellation, send failure);
// a late response for it is discarded by the reader.
func (s *session) deregister(id uint64) {
	s.mu.Lock()
	delete(s.pending, id)
	s.mu.Unlock()
}

// send queues one encoded frame and, when no other sender is already
// flushing, drains the combining buffer onto the socket. The write
// syscall happens outside the lock, so senders arriving meanwhile
// append and return immediately — their bytes ride the active flusher.
func (s *session) send(ctx context.Context, frame []byte) error {
	if s.broken() {
		return s.failure()
	}
	s.wmu.Lock()
	if s.wbuf == nil {
		s.wbuf = s.wspare[:0]
		s.wspare = nil
	}
	s.wbuf = append(s.wbuf, frame...)
	if s.writing {
		s.wmu.Unlock()
		return nil
	}
	s.writing = true
	for {
		// Yield once before draining: workers woken by the same batch of
		// responses are runnable right now, and giving them one scheduler
		// pass lets their frames land in wbuf so a single write covers
		// them all instead of one syscall each.
		s.wmu.Unlock()
		runtime.Gosched()
		s.wmu.Lock()
		if len(s.wbuf) == 0 {
			break
		}
		buf := s.wbuf
		s.wbuf = nil
		s.wmu.Unlock()
		_, err := s.nc.Write(buf)
		s.wmu.Lock()
		s.wspare = buf[:0]
		if err != nil {
			s.writing = false
			s.wmu.Unlock()
			s.fail(fmt.Errorf("clsmclient: connection lost: %w", err))
			return err
		}
	}
	s.writing = false
	s.wmu.Unlock()
	return nil
}

// readLoop dispatches response frames to their registered waiters.
// Responses arrive in whatever order the server finished them; the id
// is the only correlation.
func (s *session) readLoop() {
	r := bufio.NewReaderSize(s.nc, 64<<10)
	for {
		id, status, payload, err := wire.ReadFrame(r)
		if err != nil {
			s.fail(fmt.Errorf("clsmclient: connection lost: %w", err))
			return
		}
		s.mu.Lock()
		ch, ok := s.pending[id]
		delete(s.pending, id)
		s.mu.Unlock()
		if ok {
			ch <- result{status: status, payload: payload}
		}
	}
}

// failure returns the error the session broke with.
func (s *session) failure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// fail marks the session broken exactly once: every waiter gets err,
// the socket closes, and future sends/registrations fail fast. The
// owning slot dials a fresh session on next use.
func (s *session) fail(err error) {
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		return
	}
	s.err = err
	pending := s.pending
	s.pending = make(map[uint64]chan result)
	s.mu.Unlock()
	close(s.done)
	s.nc.Close()
	for _, ch := range pending {
		ch <- result{err: err}
	}
}
