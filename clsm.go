// Package clsm is a concurrent log-structured merge key-value store — a
// from-scratch Go implementation of cLSM ("Scaling Concurrent Log-Structured
// Data Stores", EuroSys 2015).
//
// The store offers atomic Put/Get/Delete, consistent snapshot scans and
// range queries, atomic write batches, and general non-blocking atomic
// read-modify-write operations, on top of a LevelDB-style leveled LSM tree
// (write-ahead log, sorted-table files, block cache, background
// compaction). Its concurrency design follows the paper: gets never block;
// puts run concurrently under a shared lock and block only for the short
// pointer-swap windows around memtable merges; snapshots are timestamps
// issued by a non-blocking oracle; and read-modify-write uses optimistic
// conflict detection directly on the lock-free skip-list memtable.
//
// # Quick start
//
//	db, err := clsm.OpenPath("/tmp/mydb",
//		clsm.WithMemtableSize(64<<20),
//		clsm.WithSnapshotTTL(time.Minute))
//	if err != nil { ... }
//	defer db.Close()
//
//	db.Put([]byte("k"), []byte("v"))
//	v, ok, err := db.Get([]byte("k"))
//
//	snap, _ := db.GetSnapshot()
//	defer snap.Close()
//	it, _ := snap.NewIterator()
//	defer it.Close()
//	for it.Seek([]byte("a")); it.Valid(); it.Next() { ... }
//
// The struct form clsm.Open(clsm.Options{...}) configures the same
// settings; both constructors delegate onto one path.
//
// # Observability
//
// Every store continuously records operation latency histograms, block
// cache / WAL / compaction counters, and a trace of engine events (memtable
// flushes, level compactions, write stalls, snapshot reclaims). See
// DB.Observer, WithObserver, and docs/OBSERVABILITY.md.
package clsm

import (
	"context"

	"clsm/internal/batch"
	"clsm/internal/core"
	"clsm/internal/obs"
	"clsm/internal/shard"
	"clsm/internal/storage"
)

// Batch is an ordered set of writes applied atomically by DB.Write.
type Batch = batch.Batch

// IterOptions bounds an iterator to the user-key range
// [LowerBound, UpperBound); see DB.NewIterator.
type IterOptions = core.IterOptions

// Value is one MultiGet result; see DB.MultiGet.
type Value = core.Value

// Metrics reports engine counters; see DB.Metrics.
type Metrics = core.Metrics

// DB is a concurrent LSM key-value store. All methods are safe for
// concurrent use by any number of goroutines.
//
// A DB is either a single engine or — when opened with Options.Shards,
// WithShards, or OpenSharded — a hash-partitioned facade over several
// independent engines (docs/SHARDING.md). The API is identical either
// way; exactly one of the two fields is set.
type DB struct {
	inner *core.DB
	sh    *shard.DB
}

// Open creates or opens a store configured by the options struct. It is
// equivalent to OpenPath with the corresponding With* options; both
// constructors lower onto the same engine configuration.
func Open(opts Options) (*DB, error) {
	if opts.Shards != 0 {
		return openSharded(opts)
	}
	if err := rejectShardedLayout(opts.Path); err != nil {
		return nil, err
	}
	var fs storage.FS
	if opts.Path == "" {
		fs = storage.NewMemFS()
	} else {
		osfs, err := storage.NewOSFS(opts.Path)
		if err != nil {
			return nil, err
		}
		fs = osfs
	}
	observer := obs.New()
	if opts.EventSink != nil {
		observer.Trace.SetSink(opts.EventSink)
	}
	inner, err := core.Open(opts.engineOptions(fs, observer))
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// OpenPath creates or opens the store at path (empty path = volatile
// in-memory store), configured by functional options:
//
//	db, err := clsm.OpenPath(dir,
//		clsm.WithMemtableSize(128<<20),
//		clsm.WithCompactionThreads(4),
//		clsm.WithObserver(func(e clsm.Event) { log.Println(e.Type) }))
func OpenPath(path string, options ...Option) (*DB, error) {
	opts := Options{Path: path}
	for _, apply := range options {
		apply(&opts)
	}
	return Open(opts)
}

// Put stores (key, value), overwriting any previous value. It never blocks
// except during memtable-merge pointer swaps and write stalls.
func (db *DB) Put(key, value []byte) error {
	if db.sh != nil {
		return db.sh.Put(key, value)
	}
	return db.inner.Put(key, value)
}

// Get returns the current value of key. ok is false when the key is absent
// or deleted — absence is not an error (see the package error docs). Gets
// never block.
func (db *DB) Get(key []byte) (value []byte, ok bool, err error) {
	if db.sh != nil {
		return db.sh.Get(key)
	}
	return db.inner.Get(key)
}

// Has reports whether key is present (not deleted). It mirrors Get's
// tri-state contract: absence is (false, nil), err is reserved for real
// failures. Snapshot.Has is the snapshot-scoped equivalent.
func (db *DB) Has(key []byte) (bool, error) {
	if db.sh != nil {
		return db.sh.Has(key)
	}
	return db.inner.Has(key)
}

// MultiGet returns the current value of every key in one call:
// results[i] corresponds to keys[i], with absence reported per key through
// Value.Exists rather than an error. The batch is read against a single
// consistent component set — cheaper and stronger than a Get loop, which
// may interleave with flushes. Snapshot.MultiGet is the snapshot-scoped
// equivalent.
func (db *DB) MultiGet(keys [][]byte) ([]Value, error) {
	if db.sh != nil {
		return db.sh.MultiGet(keys)
	}
	return db.inner.MultiGet(keys)
}

// Delete removes key.
func (db *DB) Delete(key []byte) error {
	if db.sh != nil {
		return db.sh.Delete(key)
	}
	return db.inner.Delete(key)
}

// Write applies the batch atomically: concurrent readers and snapshots see
// either all of the batch or none of it.
func (db *DB) Write(b *Batch) error {
	if db.sh != nil {
		return db.sh.Write(b)
	}
	return db.inner.Write(b)
}

// PutCtx is Put with cancellation: write-admission throttle waits,
// memtable/L0 stalls, and the bounded degraded-mode stall
// (Options.DegradedStallTimeout) all return ctx.Err() as soon as ctx is
// done instead of sleeping out their delay. Once a write is admitted it
// completes — cancellation never leaves a half-applied write. The network
// server (cmd/clsm-server) threads every request's context through these
// variants; see docs/NETWORK.md.
func (db *DB) PutCtx(ctx context.Context, key, value []byte) error {
	if db.sh != nil {
		return db.sh.PutCtx(ctx, key, value)
	}
	return db.inner.PutCtx(ctx, key, value)
}

// GetCtx is Get with a context. Reads never block, so ctx is checked once
// at entry: a canceled or expired context fails fast with ctx.Err().
func (db *DB) GetCtx(ctx context.Context, key []byte) (value []byte, ok bool, err error) {
	if db.sh != nil {
		return db.sh.GetCtx(ctx, key)
	}
	return db.inner.GetCtx(ctx, key)
}

// MultiGetCtx is MultiGet with a context, checked once at entry (reads
// never block).
func (db *DB) MultiGetCtx(ctx context.Context, keys [][]byte) ([]Value, error) {
	if db.sh != nil {
		return db.sh.MultiGetCtx(ctx, keys)
	}
	return db.inner.MultiGetCtx(ctx, keys)
}

// DeleteCtx is Delete with cancellation (see PutCtx).
func (db *DB) DeleteCtx(ctx context.Context, key []byte) error {
	if db.sh != nil {
		return db.sh.DeleteCtx(ctx, key)
	}
	return db.inner.DeleteCtx(ctx, key)
}

// WriteCtx is Write with cancellation (see PutCtx): the pre-admission
// waits honor ctx, and once the batch is admitted it applies atomically —
// cancellation never splits a batch.
func (db *DB) WriteCtx(ctx context.Context, b *Batch) error {
	if db.sh != nil {
		return db.sh.WriteCtx(ctx, b)
	}
	return db.inner.WriteCtx(ctx, b)
}

// RMW atomically replaces key's value with f(current). f may be called
// multiple times on conflicts; it must be pure. This is the paper's
// general non-blocking read-modify-write (Algorithm 3) — useful for
// counters, vector-clock updates, and multisite reconciliation.
func (db *DB) RMW(key []byte, f func(old []byte, exists bool) []byte) error {
	if db.sh != nil {
		return db.sh.RMW(key, f)
	}
	return db.inner.RMW(key, f)
}

// GetSnapshot returns a consistent snapshot handle for point reads and
// scans. Close it promptly: live snapshots pin old versions, blocking
// their garbage collection during merges.
func (db *DB) GetSnapshot() (*Snapshot, error) {
	if db.sh != nil {
		s, err := db.sh.GetSnapshot()
		if err != nil {
			return nil, err
		}
		return &Snapshot{s: s}, nil
	}
	c, err := db.inner.GetSnapshot()
	if err != nil {
		return nil, err
	}
	return &Snapshot{c: c}, nil
}

// NewIterator returns an iterator over a fresh implicit snapshot,
// optionally bounded to a user-key range:
//
//	it, err := db.NewIterator(clsm.IterOptions{
//		LowerBound: []byte("user:"),        // inclusive
//		UpperBound: []byte("user;"),        // exclusive
//	})
//
// Bounds clamp every positioning method and let the engine skip whole
// sorted tables outside the range. Close the iterator when done.
func (db *DB) NewIterator(opts ...IterOptions) (*Iterator, error) {
	if db.sh != nil {
		it, err := db.sh.NewIterator(opts...)
		if err != nil {
			return nil, err
		}
		return &Iterator{s: it}, nil
	}
	it, err := db.inner.NewIterator(opts...)
	if err != nil {
		return nil, err
	}
	return &Iterator{c: it}, nil
}

// Flush synchronously merges the memtable into the disk component. After
// it returns, every previously acknowledged write is in a sorted table.
func (db *DB) Flush() error {
	if db.sh != nil {
		return db.sh.Flush()
	}
	return db.inner.Flush()
}

// CompactRange synchronously flushes the memtable and compacts every level
// downward, reclaiming shadowed versions and tombstones.
func (db *DB) CompactRange() error {
	if db.sh != nil {
		return db.sh.CompactRange()
	}
	return db.inner.CompactRange()
}

// CompactValueLog synchronously garbage-collects the value log: every
// segment whose garbage fraction is at or past Options.ValueLogGCRatio is
// rewritten (live values relocated to the head of the log) and reclaimed.
// A no-op on stores without separated values. See docs/VALUELOG.md.
func (db *DB) CompactValueLog(ctx context.Context) error {
	if db.sh != nil {
		return db.sh.CompactValueLog(ctx)
	}
	return db.inner.CompactValueLog(ctx)
}

// Metrics returns a snapshot of the engine's counters.
func (db *DB) Metrics() Metrics {
	if db.sh != nil {
		return db.sh.Metrics()
	}
	return db.inner.Metrics()
}

// Observer returns the store's observability substrate: per-op latency
// histograms, substrate counters, and the engine event trace. Never nil;
// recording is always on (it is allocation-free and contention-striped).
func (db *DB) Observer() *Observer {
	if db.sh != nil {
		return db.sh.Observer()
	}
	return db.inner.Observer()
}

// Close flushes the log and releases all resources. Unflushed writes are
// recovered from the WAL on the next Open (unless DisableWAL was set).
func (db *DB) Close() error {
	if db.sh != nil {
		return db.sh.Close()
	}
	return db.inner.Close()
}
