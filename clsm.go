// Package clsm is a concurrent log-structured merge key-value store — a
// from-scratch Go implementation of cLSM ("Scaling Concurrent Log-Structured
// Data Stores", EuroSys 2015).
//
// The store offers atomic Put/Get/Delete, consistent snapshot scans and
// range queries, atomic write batches, and general non-blocking atomic
// read-modify-write operations, on top of a LevelDB-style leveled LSM tree
// (write-ahead log, sorted-table files, block cache, background
// compaction). Its concurrency design follows the paper: gets never block;
// puts run concurrently under a shared lock and block only for the short
// pointer-swap windows around memtable merges; snapshots are timestamps
// issued by a non-blocking oracle; and read-modify-write uses optimistic
// conflict detection directly on the lock-free skip-list memtable.
//
// # Quick start
//
//	db, err := clsm.Open(clsm.Options{Path: "/tmp/mydb"})
//	if err != nil { ... }
//	defer db.Close()
//
//	db.Put([]byte("k"), []byte("v"))
//	v, ok, err := db.Get([]byte("k"))
//
//	snap, _ := db.GetSnapshot()
//	defer snap.Close()
//	it, _ := snap.NewIterator()
//	defer it.Close()
//	for it.Seek([]byte("a")); it.Valid(); it.Next() { ... }
package clsm

import (
	"time"

	"clsm/internal/batch"
	"clsm/internal/core"
	"clsm/internal/storage"
	"clsm/internal/version"
)

// Options configures a store.
type Options struct {
	// Path is the database directory on the local filesystem. When empty,
	// the store runs on a volatile in-memory filesystem (tests, caches,
	// benchmarks).
	Path string

	// MemtableSize is the in-memory component's spill threshold in bytes.
	// Default 4 MiB (the paper's serving configuration uses 128 MiB; see
	// the Fig. 8 benchmark for the effect of this knob).
	MemtableSize int64

	// BlockCacheSize bounds the SSTable block cache in bytes (default 32 MiB).
	BlockCacheSize int64

	// SyncWrites makes every write wait for WAL durability. Default
	// false: asynchronous group logging, which allows writes at memory
	// speed at the risk of losing the last few writes in a crash.
	SyncWrites bool

	// DisableWAL turns off logging entirely. Data not yet flushed to
	// sorted tables is lost on restart. For caches and benchmarks.
	DisableWAL bool

	// LinearizableSnapshots trades snapshot acquisition latency for
	// linearizability: the snapshot is guaranteed to include every write
	// completed before GetSnapshot was called. The default (false) gives
	// serializable snapshots that may be slightly in the past.
	LinearizableSnapshots bool

	// CompactionThreads is the number of background compaction workers
	// (default 1).
	CompactionThreads int

	// SnapshotTTL, when positive, reclaims snapshot handles the
	// application forgot to Close after this duration; reads on a
	// reclaimed handle fail with ErrSnapshotExpired.
	SnapshotTTL time.Duration

	// Compression enables DEFLATE compression of on-disk table blocks.
	Compression bool

	// L0CompactionTrigger, BaseLevelBytes, TableFileSize, BlockSize and
	// BloomBitsPerKey shape the disk component; zero values pick
	// LevelDB-compatible defaults (4 files, 10 MiB, 2 MiB, 4 KiB, 10).
	L0CompactionTrigger int
	BaseLevelBytes      int64
	TableFileSize       int64
	BlockSize           int
	BloomBitsPerKey     int
}

// ErrSnapshotExpired is returned by reads on a TTL-reclaimed snapshot.
var ErrSnapshotExpired = core.ErrSnapshotExpired

// Batch is an ordered set of writes applied atomically by DB.Write.
type Batch = batch.Batch

// Snapshot is a consistent read-only view of the store; see DB.GetSnapshot.
type Snapshot = core.Snapshot

// Iterator walks user keys in ascending order; see DB.NewIterator.
type Iterator = core.Iterator

// Metrics reports engine counters; see DB.Metrics.
type Metrics = core.Metrics

// ErrClosed is returned by operations on a closed store.
var ErrClosed = core.ErrClosed

// DB is a concurrent LSM key-value store. All methods are safe for
// concurrent use by any number of goroutines.
type DB struct {
	inner *core.DB
}

// Open creates or opens a store.
func Open(opts Options) (*DB, error) {
	var fs storage.FS
	if opts.Path == "" {
		fs = storage.NewMemFS()
	} else {
		osfs, err := storage.NewOSFS(opts.Path)
		if err != nil {
			return nil, err
		}
		fs = osfs
	}
	inner, err := core.Open(core.Options{
		FS:                    fs,
		MemtableSize:          opts.MemtableSize,
		BlockCacheSize:        opts.BlockCacheSize,
		SyncWrites:            opts.SyncWrites,
		DisableWAL:            opts.DisableWAL,
		LinearizableSnapshots: opts.LinearizableSnapshots,
		SnapshotTTL:           opts.SnapshotTTL,
		CompactionThreads:     opts.CompactionThreads,
		Disk: version.Options{
			L0CompactionTrigger: opts.L0CompactionTrigger,
			BaseLevelBytes:      opts.BaseLevelBytes,
			TableFileSize:       opts.TableFileSize,
			BlockSize:           opts.BlockSize,
			BloomBitsPerKey:     opts.BloomBitsPerKey,
			Compress:            opts.Compression,
		},
	})
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// Put stores (key, value), overwriting any previous value. It never blocks
// except during memtable-merge pointer swaps and write stalls.
func (db *DB) Put(key, value []byte) error { return db.inner.Put(key, value) }

// Get returns the current value of key. ok is false when the key is absent
// or deleted. Gets never block.
func (db *DB) Get(key []byte) (value []byte, ok bool, err error) { return db.inner.Get(key) }

// Delete removes key.
func (db *DB) Delete(key []byte) error { return db.inner.Delete(key) }

// Write applies the batch atomically: concurrent readers and snapshots see
// either all of the batch or none of it.
func (db *DB) Write(b *Batch) error { return db.inner.Write(b) }

// RMW atomically replaces key's value with f(current). f may be called
// multiple times on conflicts; it must be pure. This is the paper's
// general non-blocking read-modify-write (Algorithm 3) — useful for
// counters, vector-clock updates, and multisite reconciliation.
func (db *DB) RMW(key []byte, f func(old []byte, exists bool) []byte) error {
	return db.inner.RMW(key, f)
}

// GetSnapshot returns a consistent snapshot handle for point reads and
// scans. Close it promptly: live snapshots pin old versions, blocking
// their garbage collection during merges.
func (db *DB) GetSnapshot() (*Snapshot, error) { return db.inner.GetSnapshot() }

// NewIterator returns an iterator over a fresh implicit snapshot. Close it
// when done.
func (db *DB) NewIterator() (*Iterator, error) { return db.inner.NewIterator() }

// CompactRange synchronously flushes the memtable and compacts every level
// downward, reclaiming shadowed versions and tombstones.
func (db *DB) CompactRange() error { return db.inner.CompactRange() }

// Metrics returns a snapshot of the engine's counters.
func (db *DB) Metrics() Metrics { return db.inner.Metrics() }

// Close flushes the log and releases all resources. Unflushed writes are
// recovered from the WAL on the next Open (unless DisableWAL was set).
func (db *DB) Close() error { return db.inner.Close() }
