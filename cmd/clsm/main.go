// Command clsm is a small inspection and manipulation tool for cLSM
// databases.
//
// Usage:
//
//	clsm -db /path/to/db put <key> <value>
//	clsm -db /path/to/db get <key>
//	clsm -db /path/to/db del <key>
//	clsm -db /path/to/db scan [start [limit]]
//	clsm -db /path/to/db incr <key>       # atomic counter via RMW
//	clsm -db /path/to/db compact
//	clsm -db /path/to/db stats
//	clsm -db /path/to/db checkpoint <dest-dir>
//	clsm -db /path/to/db backup <remote-dir>
//
// Restore runs without a live store (the target must not exist yet):
//
//	clsm restore <remote-dir> <target-dir> [backup-id]
//
// Offline (read-only, no engine):
//
//	clsm -db /path/to/db verify           # check tables, WALs, manifest
//	clsm -db /path/to/db manifest         # dump version edits
//	clsm -db /path/to/db dump-sst <num>   # dump one table
//	clsm -db /path/to/db dump-wal <num>   # dump one log
//
// Against a running clsm-server (see docs/NETWORK.md) instead of a
// local directory:
//
//	clsm -remote host:4377 put <key> <value>
//	clsm -remote host:4377 get <key>
//	clsm -remote host:4377 del <key>
//	clsm -remote host:4377 scan [start [limit]]
//	clsm -remote host:4377 stats
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"clsm"
	"clsm/clsmclient"
	"clsm/internal/storage"
	"clsm/internal/tools"
)

func main() {
	dir := flag.String("db", "", "database directory")
	remote := flag.String("remote", "", "clsm-server address; run the command over the network instead of -db")
	sync := flag.Bool("sync", false, "synchronous WAL writes")
	debugAddr := flag.String("debug-addr", "", "serve observability JSON on http://ADDR/debug/vars while the command runs")
	flag.Parse()
	args := flag.Args()
	if len(args) > 0 && args[0] == "restore" {
		restoreCmd(args)
		return
	}
	if (*dir == "") == (*remote == "") || len(args) == 0 {
		usage()
	}

	if *remote != "" {
		remoteCmd(*remote, args)
		return
	}

	switch args[0] {
	case "verify", "manifest", "dump-sst", "dump-wal":
		offline(*dir, args)
		return
	}

	db, err := clsm.OpenPath(*dir, clsm.WithSyncWrites(*sync))
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	if *debugAddr != "" {
		db.Observer().Publish("clsm")
		mux := http.NewServeMux()
		mux.Handle("/debug/vars", clsm.DebugHandler())
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "clsm: debug server:", err)
			}
		}()
	}

	switch args[0] {
	case "put":
		need(args, 3)
		if err := db.Put([]byte(args[1]), []byte(args[2])); err != nil {
			fatal(err)
		}
	case "get":
		need(args, 2)
		v, ok, err := db.Get([]byte(args[1]))
		if err != nil {
			fatal(err)
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "(not found)")
			os.Exit(1)
		}
		fmt.Printf("%s\n", v)
	case "del":
		need(args, 2)
		if err := db.Delete([]byte(args[1])); err != nil {
			fatal(err)
		}
	case "scan":
		var start []byte
		limit := 100
		if len(args) > 1 {
			start = []byte(args[1])
		}
		if len(args) > 2 {
			n, err := strconv.Atoi(args[2])
			if err != nil {
				fatal(err)
			}
			limit = n
		}
		it, err := db.NewIterator()
		if err != nil {
			fatal(err)
		}
		defer it.Close()
		count := 0
		for it.Seek(start); it.Valid() && count < limit; it.Next() {
			fmt.Printf("%s\t%s\n", it.Key(), it.Value())
			count++
		}
		if err := it.Err(); err != nil {
			fatal(err)
		}
	case "incr":
		need(args, 2)
		var after int64
		err := db.RMW([]byte(args[1]), func(old []byte, exists bool) []byte {
			var n int64
			if exists {
				n, _ = strconv.ParseInt(string(old), 10, 64)
			}
			after = n + 1
			return []byte(strconv.FormatInt(after, 10))
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(after)
	case "compact":
		if err := db.CompactRange(); err != nil {
			fatal(err)
		}
	case "checkpoint":
		need(args, 2)
		n, err := db.Checkpoint(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint: %d tables linked into %s\n", n, args[1])
	case "backup":
		need(args, 2)
		be, err := clsm.NewBackupEngine(args[1], clsm.RemoteOptions{})
		if err != nil {
			fatal(err)
		}
		m, err := db.Backup(be)
		if err != nil {
			fatal(err)
		}
		o := db.Observer()
		fmt.Printf("backup %d complete (incremental against %d): %d bytes shipped, %d files skipped\n",
			m.ID, m.Prev, o.BackupBytesShipped.Load(), o.BackupFilesSkipped.Load())
	case "stats":
		h := db.Health()
		fmt.Printf("health:       %s\n", h.State)
		if h.Err != nil {
			fmt.Printf("health cause: %v\n", h.Err)
		}
		m := db.Metrics()
		fmt.Printf("disk bytes:   %d\n", m.DiskBytes)
		fmt.Printf("disk files:   %d\n", m.DiskFiles)
		fmt.Printf("level sizes:  %v\n", m.LevelSize)
		fmt.Printf("flushes:      %d\n", m.Flushes)
		fmt.Printf("compactions:  %d\n", m.Compactions)
		fmt.Printf("write stalls: %d\n", m.WriteStalls)
		if m.VlogSegments > 0 || m.VlogGCRuns > 0 {
			fmt.Printf("value log:    %d segments, %d garbage bytes, %d gc runs\n",
				m.VlogSegments, m.VlogGarbageBytes, m.VlogGCRuns)
		}
		fmt.Println()
		o := db.Observer()
		o.WriteSummary(os.Stdout)
		o.WriteEvents(os.Stdout, 20)
	default:
		usage()
	}
}

// remoteCmd runs one command against a clsm-server. Commands that need
// the engine in-process (incr's RMW loop, compact, the offline
// inspectors) have no remote form and say so.
func remoteCmd(addr string, args []string) {
	switch args[0] {
	case "put", "get", "del", "scan", "stats":
	case "incr", "compact", "verify", "manifest", "dump-sst", "dump-wal", "checkpoint", "backup":
		fmt.Fprintf(os.Stderr, "clsm: %q is not available over -remote; run it on the server host with -db\n", args[0])
		os.Exit(2)
	default:
		usage()
	}

	c, err := clsmclient.Dial(addr, clsmclient.WithRetry(3, 50*time.Millisecond, time.Second))
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	switch args[0] {
	case "put":
		need(args, 3)
		if err := c.Put(ctx, []byte(args[1]), []byte(args[2])); err != nil {
			fatal(err)
		}
	case "get":
		need(args, 2)
		v, ok, err := c.Get(ctx, []byte(args[1]))
		if err != nil {
			fatal(err)
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "(not found)")
			os.Exit(1)
		}
		fmt.Printf("%s\n", v)
	case "del":
		need(args, 2)
		if err := c.Delete(ctx, []byte(args[1])); err != nil {
			fatal(err)
		}
	case "scan":
		var start []byte
		limit := 100
		if len(args) > 1 {
			start = []byte(args[1])
		}
		if len(args) > 2 {
			n, err := strconv.Atoi(args[2])
			if err != nil {
				fatal(err)
			}
			limit = n
		}
		kvs, err := c.Scan(ctx, start, limit)
		if err != nil {
			fatal(err)
		}
		for _, kv := range kvs {
			fmt.Printf("%s\t%s\n", kv.Key, kv.Value)
		}
	case "stats":
		st, err := c.Status(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("health:       %s\n", clsm.HealthState(st.Health))
		if st.HealthMsg != "" {
			fmt.Printf("health cause: %s\n", st.HealthMsg)
		}
		fmt.Printf("%s\n", st.Obs)
	}
}

// offline runs the read-only inspection commands without opening the
// engine (safe on a database another process has live, or a corrupt one).
func offline(dir string, args []string) {
	fs, err := storage.NewOSFS(dir)
	if err != nil {
		fatal(err)
	}
	switch args[0] {
	case "verify":
		res, err := tools.Check(fs)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Summary())
		if !res.OK() {
			os.Exit(1)
		}
	case "manifest":
		if err := tools.DumpManifest(fs, os.Stdout); err != nil {
			fatal(err)
		}
	case "dump-sst", "dump-wal":
		need(args, 2)
		num, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			fatal(err)
		}
		if args[0] == "dump-sst" {
			err = tools.DumpTable(fs, num, os.Stdout)
		} else {
			err = tools.DumpLog(fs, num, os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

// restoreCmd materializes a backup into a fresh directory: no live store
// is opened, so it works on a machine that never held the original.
func restoreCmd(args []string) {
	if len(args) < 3 || len(args) > 4 {
		usage()
	}
	var id uint64
	if len(args) == 4 {
		n, err := strconv.ParseUint(args[3], 10, 64)
		if err != nil {
			fatal(fmt.Errorf("backup id %q: %w", args[3], err))
		}
		id = n
	}
	if _, err := os.Stat(args[2]); err == nil {
		fatal(fmt.Errorf("restore target %s already exists; restore only into a fresh directory", args[2]))
	}
	be, err := clsm.NewBackupEngine(args[1], clsm.RemoteOptions{})
	if err != nil {
		fatal(err)
	}
	m, err := be.Restore(id, args[2])
	if err != nil {
		fatal(err)
	}
	tables := 0
	for _, st := range m.Stores {
		tables += len(st.Tables)
	}
	fmt.Printf("restored backup %d into %s (%d store images, %d tables)\n",
		m.ID, args[2], len(m.Stores), tables)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: clsm -db DIR COMMAND ...
       clsm -remote ADDR COMMAND ...   (put/get/del/scan/stats only)
commands:
  put KEY VALUE    store a pair
  get KEY          read a value
  del KEY          delete a key
  scan [START [N]] list up to N pairs from START
  incr KEY         atomically increment a decimal counter (RMW)
  compact          force a full flush + compaction sweep
  stats            print store shape
  checkpoint DEST  link a consistent openable image of the store into DEST
  backup REMOTE    ship an incremental backup to the REMOTE directory
  verify           offline integrity check (tables, WALs, manifest)
  manifest         dump the MANIFEST edit sequence
  dump-sst NUM     dump one table file
  dump-wal NUM     dump one write-ahead log
standalone (no -db):
  restore REMOTE TARGET [ID]  restore backup ID (default latest) into TARGET`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clsm:", err)
	os.Exit(1)
}
