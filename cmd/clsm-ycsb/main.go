// Command clsm-ycsb runs the six core YCSB workloads against cLSM or any
// of the baseline store models.
//
// Usage:
//
//	clsm-ycsb -workload a -records 100000 -ops 200000 -threads 8
//	clsm-ycsb -workload f -store LevelDB
//	clsm-ycsb -all -threads 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"clsm/internal/baseline"
	"clsm/internal/harness"
	"clsm/internal/ycsb"
)

func main() {
	var (
		wl      = flag.String("workload", "a", "YCSB workload a-f")
		all     = flag.Bool("all", false, "run every workload a-f")
		store   = flag.String("store", string(baseline.NameCLSM), "store model (cLSM, LevelDB, HyperLevelDB, RocksDB, bLSM)")
		records = flag.Int64("records", 100_000, "records to preload")
		ops     = flag.Int64("ops", 100_000, "operations in the transaction phase")
		threads = flag.Int("threads", 4, "client threads")
		scale   = flag.String("scale", "small", "engine sizing preset: smoke | small | full")
		vsize   = flag.Int("value-size", 1000, "value size in bytes (the minimum under variable distributions)")
		vdist   = flag.String("value-dist", "fixed", "value size distribution: fixed | uniform | zipf")
		vmax    = flag.Int("value-max", 0, "largest value in bytes for uniform/zipf (default 4x -value-size)")
	)
	flag.Parse()

	sc, err := harness.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	dist, err := ycsb.ParseValueDist(*vdist)
	if err != nil {
		fatal(err)
	}
	var workloads []ycsb.Workload
	if *all {
		workloads = []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC,
			ycsb.WorkloadD, ycsb.WorkloadE, ycsb.WorkloadF}
	} else {
		w, err := ycsb.ParseWorkload(*wl)
		if err != nil {
			fatal(err)
		}
		workloads = []ycsb.Workload{w}
	}

	for _, w := range workloads {
		s, err := baseline.New(baseline.Name(*store), sc.CoreOptions())
		if err != nil {
			fatal(err)
		}
		cfg := ycsb.Config{
			Workload:    w,
			RecordCount: *records,
			OpCount:     *ops,
			Threads:     *threads,
			ValueSize:   *vsize,
			ValueDist:   dist,
			ValueMax:    *vmax,
		}
		loadStart := time.Now()
		if err := ycsb.Load(s, cfg); err != nil {
			fatal(err)
		}
		loadDur := time.Since(loadStart)
		res, err := ycsb.Run(s, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n=== YCSB workload %c on %s (%d records, %d ops, %d threads) ===\n",
			w, *store, *records, *ops, *threads)
		fmt.Printf("load phase:  %v (%.0f inserts/s)\n",
			loadDur.Round(time.Millisecond), float64(*records)/loadDur.Seconds())
		fmt.Printf("txn phase:   %v, %.0f ops/s\n",
			res.Elapsed.Round(time.Millisecond), res.Throughput)
		for _, op := range []string{"read", "update", "insert", "scan", "rmw"} {
			r := res.PerOp[op]
			if r.Count == 0 {
				continue
			}
			fmt.Printf("  %-7s %8d ops   p50=%-10v p90=%-10v p99=%v\n",
				op, r.Count,
				r.Hist.Quantile(0.50).Round(time.Microsecond),
				r.Hist.Quantile(0.90).Round(time.Microsecond),
				r.Hist.Quantile(0.99).Round(time.Microsecond))
		}
		if err := s.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clsm-ycsb:", err)
	os.Exit(1)
}
