package main

// The backup profile prices the promise docs/BACKUP.md makes: backups
// are online. The same concurrent put workload runs twice on a real
// on-disk store — once undisturbed (the baseline), once with
// back-to-back incremental backups shipping to a remote directory the
// whole time (the worst case: every backup forces a flush and a
// checkpoint, and the shipping competes for the same disk). The ratio
// between the two is the foreground cost of the backup tier. The run
// finishes by restoring the newest backup and counting its keys, so the
// throughput number is tied to an image that verifiably opens. Results
// land in BENCH_backup.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clsm"
	"clsm/internal/harness"
)

// backupReport is the BENCH_backup.json schema.
type backupReport struct {
	Scale   string `json:"scale"`
	Writers int    `json:"writers"`
	Keys    int    `json:"keys"`

	BaselineSeconds    float64 `json:"baseline_seconds"`
	BaselinePutsPerSec float64 `json:"baseline_puts_per_sec"`
	BackupSeconds      float64 `json:"backup_seconds"`
	BackupPutsPerSec   float64 `json:"backup_puts_per_sec"`
	// ThroughputRatio is with-backups over baseline put throughput —
	// 1.0 means free, lower is foreground cost paid to the backup tier.
	ThroughputRatio float64 `json:"throughput_ratio"`

	BackupsCompleted int     `json:"backups_completed"`
	BytesShipped     uint64  `json:"bytes_shipped"`
	FilesSkipped     uint64  `json:"files_skipped"`
	RestoreSeconds   float64 `json:"restore_seconds"`
	RestoredKeys     int     `json:"restored_keys"`
}

// backupProfile runs both phases and writes out (default
// BENCH_backup.json).
func backupProfile(sc harness.Scale, out string) error {
	dur := 4 * time.Second
	writers := runtime.GOMAXPROCS(0)
	if writers < 4 {
		writers = 4
	}
	keys := 1 << 16
	switch sc.Name {
	case "smoke":
		dur = 1500 * time.Millisecond
		keys = 1 << 14
	case "full":
		dur = 12 * time.Second
	}

	root, err := os.MkdirTemp("", "clsm-backup-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	db, err := clsm.OpenPath(filepath.Join(root, "db"))
	if err != nil {
		return err
	}
	defer db.Close()

	fmt.Printf("# backup profile — %v per phase, %d writers, %d keys\n", dur, writers, keys)

	rep := backupReport{Scale: sc.Name, Writers: writers, Keys: keys}

	// Phase 1: undisturbed baseline.
	puts, elapsed, err := backupPutPhase(db, writers, keys, dur)
	if err != nil {
		return err
	}
	rep.BaselineSeconds = elapsed.Seconds()
	rep.BaselinePutsPerSec = float64(puts) / elapsed.Seconds()
	fmt.Printf("baseline      %9.0f puts/s\n", rep.BaselinePutsPerSec)

	// Phase 2: the same workload with back-to-back incremental backups
	// shipping the whole time.
	be, err := clsm.NewBackupEngine(filepath.Join(root, "remote"), clsm.RemoteOptions{})
	if err != nil {
		return err
	}
	var (
		stopBackups atomic.Bool
		backupErr   error
		backupWG    sync.WaitGroup
	)
	backupWG.Add(1)
	go func() {
		defer backupWG.Done()
		for !stopBackups.Load() {
			if _, err := db.Backup(be); err != nil {
				backupErr = err
				return
			}
			rep.BackupsCompleted++
		}
	}()
	puts, elapsed, err = backupPutPhase(db, writers, keys, dur)
	stopBackups.Store(true)
	backupWG.Wait()
	if err != nil {
		return err
	}
	if backupErr != nil {
		return fmt.Errorf("backup during workload: %w", backupErr)
	}
	if rep.BackupsCompleted == 0 {
		return fmt.Errorf("no backup completed within the %v phase", dur)
	}
	rep.BackupSeconds = elapsed.Seconds()
	rep.BackupPutsPerSec = float64(puts) / elapsed.Seconds()
	rep.ThroughputRatio = rep.BackupPutsPerSec / rep.BaselinePutsPerSec
	o := db.Observer()
	rep.BytesShipped = o.BackupBytesShipped.Load()
	rep.FilesSkipped = o.BackupFilesSkipped.Load()
	fmt.Printf("with backups  %9.0f puts/s   ratio %.2f   (%d backups, %d MiB shipped, %d files skipped)\n",
		rep.BackupPutsPerSec, rep.ThroughputRatio, rep.BackupsCompleted,
		rep.BytesShipped>>20, rep.FilesSkipped)

	// Restore the newest backup and count what came back: the profile's
	// throughput numbers only count if the images open.
	restoreDir := filepath.Join(root, "restored")
	t0 := time.Now()
	if _, err := be.Restore(0, restoreDir); err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	rep.RestoreSeconds = time.Since(t0).Seconds()
	rdb, err := clsm.OpenPath(restoreDir)
	if err != nil {
		return fmt.Errorf("open restored store: %w", err)
	}
	it, err := rdb.NewIterator()
	if err != nil {
		rdb.Close()
		return err
	}
	for it.First(); it.Valid(); it.Next() {
		rep.RestoredKeys++
	}
	ierr := it.Err()
	it.Close()
	rdb.Close()
	if ierr != nil {
		return fmt.Errorf("scan restored store: %w", ierr)
	}
	if rep.RestoredKeys == 0 {
		return fmt.Errorf("restored store is empty")
	}
	fmt.Printf("restore       %6.2fs for %d keys\n", rep.RestoreSeconds, rep.RestoredKeys)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// backupPutPhase runs the concurrent put workload for dur and returns
// how many puts landed.
func backupPutPhase(db *clsm.DB, writers, keys int, dur time.Duration) (int64, time.Duration, error) {
	var (
		puts     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	val := make([]byte, 128)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			k := make([]byte, 0, 16)
			for i := seed; !stop.Load(); i += writers {
				k = fmt.Appendf(k[:0], "key-%08d", i%keys)
				if err := db.Put(k, val); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				puts.Add(1)
			}
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return puts.Load(), time.Since(start), firstErr
}
