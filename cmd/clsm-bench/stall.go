package main

// The stall profile is the A/B experiment behind the unified background
// scheduler (docs/SCHEDULING.md): the same overload workload — writers
// outrunning a deliberately slowed disk — run once under the "legacy"
// profile (the historical binary L0 slowdown/stop gate) and once under the
// auto-tuned admission controller. Put completions are bucketed into short
// wall-clock windows; the worst window's maximum latency is the stall
// cliff the redesign exists to remove. Results land in BENCH_stall.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"clsm/internal/core"
	"clsm/internal/faultfs"
	"clsm/internal/harness"
	"clsm/internal/storage"
)

const stallWindow = 250 * time.Millisecond

// stallSample is one completed put: when it finished (offset from the run
// start) and how long it took.
type stallSample struct {
	at  time.Duration
	lat time.Duration
}

// stallWindowStats summarizes one wall-clock window of put completions.
type stallWindowStats struct {
	StartMS int64  `json:"start_ms"`
	Puts    int    `json:"puts"`
	P99us   uint64 `json:"p99_us"`
	MaxUs   uint64 `json:"max_us"`
}

// stallRunResult is one profile's half of the A/B comparison.
type stallRunResult struct {
	Profile          string             `json:"profile"`
	Seconds          float64            `json:"seconds"`
	Puts             int                `json:"puts"`
	PutsPerSec       float64            `json:"puts_per_sec"`
	WorstWindowMaxUs uint64             `json:"worst_window_max_us"`
	WorstWindowP99us uint64             `json:"worst_window_p99_us"`
	ThrottledWrites  uint64             `json:"throttled_writes"`
	Windows          []stallWindowStats `json:"windows"`
}

// stallReport is the BENCH_stall.json schema.
type stallReport struct {
	Scale            string         `json:"scale"`
	WindowMS         int64          `json:"window_ms"`
	Writers          int            `json:"writers"`
	SSTWriteDelayUS  int64          `json:"sst_write_delay_us"`
	Legacy           stallRunResult `json:"legacy"`
	Tuned            stallRunResult `json:"tuned"`
	WorstWindowRatio float64        `json:"worst_window_max_improvement"` // legacy/tuned, >1 = tuned better
	ThroughputRatio  float64        `json:"throughput_ratio"`             // tuned/legacy, 1.0 = parity
}

// stallProfile runs the A/B overload experiment and writes out (default
// BENCH_stall.json).
func stallProfile(sc harness.Scale, out string) error {
	dur := 8 * time.Second
	writers := 4
	delay := 2 * time.Millisecond
	switch sc.Name {
	case "smoke":
		dur = 3 * time.Second
	case "full":
		dur = 20 * time.Second
		writers = 8
	}

	fmt.Printf("# stall profile — %v per run, %d writers, %v sst-write delay, %v windows\n",
		dur, writers, delay, stallWindow)

	legacy, err := stallRun("legacy", dur, writers, delay)
	if err != nil {
		return err
	}
	tuned, err := stallRun("default", dur, writers, delay)
	if err != nil {
		return err
	}

	rep := stallReport{
		Scale:           sc.Name,
		WindowMS:        stallWindow.Milliseconds(),
		Writers:         writers,
		SSTWriteDelayUS: delay.Microseconds(),
		Legacy:          legacy,
		Tuned:           tuned,
	}
	if tuned.WorstWindowMaxUs > 0 {
		rep.WorstWindowRatio = float64(legacy.WorstWindowMaxUs) / float64(tuned.WorstWindowMaxUs)
	}
	if legacy.PutsPerSec > 0 {
		rep.ThroughputRatio = tuned.PutsPerSec / legacy.PutsPerSec
	}

	for _, r := range []stallRunResult{legacy, tuned} {
		fmt.Printf("%-8s %8.0f puts/s   worst-window max %8.1f ms   p99 %8.1f ms   throttled writes %d\n",
			r.Profile, r.PutsPerSec,
			float64(r.WorstWindowMaxUs)/1000, float64(r.WorstWindowP99us)/1000,
			r.ThrottledWrites)
	}
	fmt.Printf("worst-window max improvement %.2fx, throughput ratio %.3f\n",
		rep.WorstWindowRatio, rep.ThroughputRatio)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// stallRun drives the overload workload against one scheduler profile.
func stallRun(profile string, dur time.Duration, writers int, delay time.Duration) (stallRunResult, error) {
	ffs := faultfs.Wrap(storage.NewMemFS())
	ffs.SetDelay(faultfs.OpWrite, "*.sst", delay)
	db, err := core.Open(core.Options{
		FS:                ffs,
		MemtableSize:      256 << 10,
		CompactionThreads: 2,
		L0SlowdownTrigger: 4,
		L0StopTrigger:     8,
		SchedulerProfile:  profile,
	})
	if err != nil {
		return stallRunResult{}, err
	}
	defer db.Close()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []stallSample
		werr    error
	)
	val := make([]byte, 512)
	start := time.Now()
	if os.Getenv("STALL_DEBUG") != "" && profile != "legacy" {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(20 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					fmt.Printf("t=%6dms rate=%8dKB/s debt=%8dKB fill=%.2f merge=%v\n",
						time.Since(start).Milliseconds(),
						db.Observer().ThrottleRate.Load()/1024,
						db.Observer().CompactionDebt.Load()/1024,
						db.MemtableFillFraction(), db.MergeInFlight())
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := make([]stallSample, 0, 1<<14)
			key := make([]byte, 0, 24)
			for i := 0; ; i++ {
				el := time.Since(start)
				if el >= dur {
					break
				}
				key = fmt.Appendf(key[:0], "w%02d-key-%09d", id, i)
				s := time.Now()
				err := db.Put(key, val)
				lat := time.Since(s)
				if err != nil {
					mu.Lock()
					if werr == nil {
						werr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, stallSample{at: el, lat: lat})
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	throttled := db.Observer().WriteThrottle.Count()
	if werr != nil {
		return stallRunResult{}, fmt.Errorf("profile %s: %w", profile, werr)
	}

	res := stallRunResult{
		Profile:         profile,
		Seconds:         elapsed.Seconds(),
		Puts:            len(samples),
		PutsPerSec:      float64(len(samples)) / elapsed.Seconds(),
		ThrottledWrites: throttled,
	}
	nWin := int(dur/stallWindow) + 1
	byWin := make([][]time.Duration, nWin)
	for _, s := range samples {
		w := int(s.at / stallWindow)
		if w >= nWin {
			w = nWin - 1
		}
		byWin[w] = append(byWin[w], s.lat)
	}
	for w, lats := range byWin {
		if len(lats) == 0 {
			continue
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p99 := lats[len(lats)*99/100]
		max := lats[len(lats)-1]
		ws := stallWindowStats{
			StartMS: int64(w) * stallWindow.Milliseconds(),
			Puts:    len(lats),
			P99us:   uint64(p99.Microseconds()),
			MaxUs:   uint64(max.Microseconds()),
		}
		res.Windows = append(res.Windows, ws)
		if ws.MaxUs > res.WorstWindowMaxUs {
			res.WorstWindowMaxUs = ws.MaxUs
		}
		if ws.P99us > res.WorstWindowP99us {
			res.WorstWindowP99us = ws.P99us
		}
	}
	return res, nil
}
