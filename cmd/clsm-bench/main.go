// Command clsm-bench regenerates the tables and figures of "Scaling
// Concurrent Log-Structured Data Stores" (EuroSys 2015).
//
// Usage:
//
//	clsm-bench -fig all            # every figure at the default scale
//	clsm-bench -fig fig5 -scale full
//	clsm-bench -fig fig6 -latency  # add the throughput-vs-latency view
//	clsm-bench -list
//
// Scales: smoke (seconds, CI), small (minutes, default), full (paper-like
// parameters, tens of minutes). Output is the tabular equivalent of each
// plot: one row per x-value, one column per store model.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"clsm"
	"clsm/internal/harness"
)

type figureFn func(harness.Scale) ([]*harness.Figure, error)

func single(f func(harness.Scale) (*harness.Figure, error)) figureFn {
	return func(sc harness.Scale) ([]*harness.Figure, error) {
		fig, err := f(sc)
		if err != nil {
			return nil, err
		}
		return []*harness.Figure{fig}, nil
	}
}

var figures = map[string]struct {
	fn    figureFn
	about string
}{
	"fig1":  {single(harness.Fig1), "partitioned LevelDB/Hyper vs shared cLSM, production workload"},
	"fig5":  {single(harness.Fig5), "write throughput + latency, 100% uniform puts"},
	"fig6":  {single(harness.Fig6), "read throughput + latency, 90/10 hotspot gets"},
	"fig7a": {single(harness.Fig7a), "mixed 50/50 read/write throughput"},
	"fig7b": {single(harness.Fig7b), "mixed scan/write throughput (keys/sec)"},
	"fig8":  {single(harness.Fig8), "throughput vs memory component size"},
	"fig9":  {single(harness.Fig9), "RMW: lock-free (Alg. 3) vs lock striping"},
	"fig10": {harness.Fig10, "four production-like datasets, 85-96% reads"},
	"fig11": {single(harness.Fig11), "disk-bound heavy compaction, RocksDB multi-threaded compaction"},
}

func main() {
	var (
		figFlag   = flag.String("fig", "all", "figure to regenerate (fig1,fig5,...,fig11 or all)")
		scaleFlag = flag.String("scale", "small", "experiment scale: smoke | small | full")
		latency   = flag.Bool("latency", false, "also print throughput-vs-p90-latency tables")
		list      = flag.Bool("list", false, "list figures and exit")
		obsFlag   = flag.Bool("obs", true, "finish with an instrumented profile run: per-op latency percentiles and the engine event timeline")
		stall     = flag.Bool("stall-profile", false, "run the write-stall A/B experiment (legacy gate vs auto-tuned throttle) instead of the figures")
		stallOut  = flag.String("stall-out", "BENCH_stall.json", "output path for the stall-profile report")
		shardProf = flag.Bool("shard-profile", false, "run the horizontal-sharding A/B experiment (scaling, N=1 parity, adaptive governor) instead of the figures")
		shardN    = flag.Int("shards", 4, "shard count for the -shard-profile scaling and governor runs")
		shardOut  = flag.String("shard-out", "BENCH_shard.json", "output path for the shard-profile report")
		txnProf   = flag.Bool("txn-profile", false, "run the multi-key transaction experiment (txn vs RMW vs blind batch, hot vs uniform keyspaces) instead of the figures")
		txnOut    = flag.String("txn-out", "BENCH_txn.json", "output path for the txn-profile report")
		bkProf    = flag.Bool("backup-profile", false, "run the online-backup overhead experiment (put throughput with vs without concurrent incremental backups) instead of the figures")
		bkOut     = flag.String("backup-out", "BENCH_backup.json", "output path for the backup-profile report")
		vlogProf  = flag.Bool("vlog-profile", false, "run the key-value-separation experiment (inline vs value-log at 4KiB values, small-value parity) instead of the figures")
		vlogOut   = flag.String("vlog-out", "BENCH_vlog.json", "output path for the vlog-profile report")
	)
	flag.Parse()

	if *list {
		names := make([]string, 0, len(figures))
		for n := range figures {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-7s %s\n", n, figures[n].about)
		}
		return
	}

	sc, err := harness.ScaleByName(*scaleFlag)
	if err != nil {
		fatal(err)
	}

	if *stall {
		if err := stallProfile(sc, *stallOut); err != nil {
			fatal(fmt.Errorf("stall profile: %w", err))
		}
		return
	}

	if *shardProf {
		if err := shardProfile(sc, *shardN, *shardOut); err != nil {
			fatal(fmt.Errorf("shard profile: %w", err))
		}
		return
	}

	if *txnProf {
		if err := txnProfile(sc, *txnOut); err != nil {
			fatal(fmt.Errorf("txn profile: %w", err))
		}
		return
	}

	if *bkProf {
		if err := backupProfile(sc, *bkOut); err != nil {
			fatal(fmt.Errorf("backup profile: %w", err))
		}
		return
	}

	if *vlogProf {
		if err := vlogProfile(sc, *vlogOut); err != nil {
			fatal(fmt.Errorf("vlog profile: %w", err))
		}
		return
	}

	var ids []string
	if *figFlag == "all" {
		for n := range figures {
			ids = append(ids, n)
		}
		sort.Strings(ids)
	} else {
		if _, ok := figures[*figFlag]; !ok {
			fatal(fmt.Errorf("unknown figure %q (use -list)", *figFlag))
		}
		ids = []string{*figFlag}
	}

	fmt.Printf("# cLSM benchmark suite — scale=%s, GOMAXPROCS=%d\n", sc.Name, runtime.GOMAXPROCS(0))
	grand := time.Now()
	for _, id := range ids {
		start := time.Now()
		figs, err := figures[id].fn(sc)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		for _, fig := range figs {
			fig.WriteTable(os.Stdout)
			if *latency {
				fig.WriteLatencyTable(os.Stdout)
			}
		}
		fmt.Printf("(%s finished in %v)\n", id, time.Since(start).Round(time.Second))
	}
	fmt.Printf("# total %v\n", time.Since(grand).Round(time.Second))

	if *obsFlag {
		if err := obsProfile(sc); err != nil {
			fatal(fmt.Errorf("obs profile: %w", err))
		}
	}
}

// obsProfile runs a short mixed workload against an instrumented in-memory
// store and prints what internal/obs recorded: per-operation latency
// percentiles (p50/p95/p99/max) and the flush/compaction/stall event
// timeline. It is the built-in demonstration of the observability surface;
// long-lived processes serve the same data over HTTP via
// Observer.Publish + clsm.DebugHandler.
func obsProfile(sc harness.Scale) error {
	// A small memtable guarantees flushes, compactions and (under enough
	// write pressure) stalls even at smoke scale.
	db, err := clsm.OpenPath("",
		clsm.WithMemtableSize(1<<20),
		clsm.WithCompactionThreads(2),
		clsm.WithL0Triggers(2, 4, 8))
	if err != nil {
		return err
	}
	defer db.Close()

	ops := 60_000
	if sc.Name == "full" {
		ops = 400_000
	}
	workers := runtime.GOMAXPROCS(0)
	val := make([]byte, 512)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			key := make([]byte, 0, 16)
			for i := 0; i < ops/workers; i++ {
				key = fmt.Appendf(key[:0], "key-%08d", rng.Intn(ops))
				var err error
				switch rng.Intn(10) {
				case 0, 1, 2: // 30% gets
					_, _, err = db.Get(key)
				case 3: // 10% RMW counters
					err = db.RMW(key, func(old []byte, ok bool) []byte { return val[:8] })
				default: // 60% puts
					err = db.Put(key, val)
				}
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	// A snapshot scan exercises the read-path histograms (snapshot
	// acquisition + iterator next).
	snap, err := db.GetSnapshot()
	if err != nil {
		return err
	}
	it, err := snap.NewIterator()
	if err != nil {
		snap.Close()
		return err
	}
	n := 0
	for it.First(); it.Valid() && n < 10_000; it.Next() {
		n++
	}
	it.Close()
	snap.Close()

	if err := db.CompactRange(); err != nil {
		return err
	}

	o := db.Observer()
	fmt.Println()
	fmt.Println("## instrumented profile (internal/obs)")
	o.WriteSummary(os.Stdout)
	o.WriteEvents(os.Stdout, 40)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clsm-bench:", err)
	os.Exit(1)
}
