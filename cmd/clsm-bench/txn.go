package main

// The txn profile measures what multi-key optimistic transactions cost
// relative to the write primitives they generalize: the same concurrent
// read-modify-write workload run as transactions (BeginTxn/Get×2/Put×2/
// Commit with a retry loop), as single-key RMW (Algorithm 3), and as
// blind atomic batches (no validation — the throughput ceiling). Each
// transactional mode runs on two keyspaces: a small hot set where
// conflicts are constant and retries dominate, and a wide uniform set
// where validation almost always succeeds — bracketing the conflict-rate
// axis. Results land in BENCH_txn.json.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clsm"
	"clsm/internal/harness"
)

// txnRunResult is one (mode, keyspace) cell of the profile.
type txnRunResult struct {
	Mode     string  `json:"mode"`     // txn | rmw | batch
	Keyspace string  `json:"keyspace"` // hot | uniform
	Keys     int     `json:"keys"`
	Seconds  float64 `json:"seconds"`
	// Commits counts successful operations (committed txns / RMWs /
	// batches); Attempts additionally counts conflicted tries.
	Commits       int     `json:"commits"`
	Attempts      int     `json:"attempts"`
	Conflicts     uint64  `json:"conflicts"`
	ConflictRate  float64 `json:"conflict_rate"` // conflicts / attempts
	CommitsPerSec float64 `json:"commits_per_sec"`
}

// txnReport is the BENCH_txn.json schema.
type txnReport struct {
	Scale   string         `json:"scale"`
	Writers int            `json:"writers"`
	Runs    []txnRunResult `json:"runs"`
	// TxnVsBatchUniform is uniform-keyspace txn throughput over blind
	// batch throughput — the price of validation off the contended path.
	TxnVsBatchUniform float64 `json:"txn_vs_batch_uniform"`
	// TxnVsRMWHot compares hot-keyspace txn commits/sec against RMW on
	// the same keyspace (both retry optimistically under contention).
	TxnVsRMWHot float64 `json:"txn_vs_rmw_hot"`
	// HotConflictRate / UniformConflictRate summarize the two ends of
	// the conflict axis for the txn mode.
	HotConflictRate     float64 `json:"hot_conflict_rate"`
	UniformConflictRate float64 `json:"uniform_conflict_rate"`
}

// txnProfile runs the grid and writes out (default BENCH_txn.json).
func txnProfile(sc harness.Scale, out string) error {
	dur := 4 * time.Second
	writers := runtime.GOMAXPROCS(0)
	if writers < 4 {
		writers = 4
	}
	switch sc.Name {
	case "smoke":
		dur = 1500 * time.Millisecond
	case "full":
		dur = 12 * time.Second
		if writers < 8 {
			writers = 8
		}
	}
	const hotKeys, uniformKeys = 64, 16384

	fmt.Printf("# txn profile — %v per run, %d writers, hot=%d keys, uniform=%d keys\n",
		dur, writers, hotKeys, uniformKeys)

	grid := []struct {
		mode     string
		keyspace string
		keys     int
	}{
		{"txn", "hot", hotKeys},
		{"txn", "uniform", uniformKeys},
		{"rmw", "hot", hotKeys},
		{"rmw", "uniform", uniformKeys},
		{"batch", "hot", hotKeys},
		{"batch", "uniform", uniformKeys},
	}
	rep := txnReport{Scale: sc.Name, Writers: writers}
	cells := map[string]txnRunResult{}
	for _, g := range grid {
		r, err := txnRun(g.mode, g.keyspace, g.keys, dur, writers)
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, r)
		cells[g.mode+"/"+g.keyspace] = r
		fmt.Printf("%-6s %-8s %9.0f commits/s   conflict rate %5.1f%%   (%d commits, %d conflicts)\n",
			r.Mode, r.Keyspace, r.CommitsPerSec, r.ConflictRate*100, r.Commits, r.Conflicts)
	}

	if b := cells["batch/uniform"]; b.CommitsPerSec > 0 {
		rep.TxnVsBatchUniform = cells["txn/uniform"].CommitsPerSec / b.CommitsPerSec
	}
	if r := cells["rmw/hot"]; r.CommitsPerSec > 0 {
		rep.TxnVsRMWHot = cells["txn/hot"].CommitsPerSec / r.CommitsPerSec
	}
	rep.HotConflictRate = cells["txn/hot"].ConflictRate
	rep.UniformConflictRate = cells["txn/uniform"].ConflictRate
	fmt.Printf("txn/batch uniform throughput ratio %.3f, txn/rmw hot ratio %.3f, conflict rate hot %.1f%% vs uniform %.1f%%\n",
		rep.TxnVsBatchUniform, rep.TxnVsRMWHot, rep.HotConflictRate*100, rep.UniformConflictRate*100)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// txnRun executes one (mode, keyspace) cell against a fresh in-memory
// store.
func txnRun(mode, keyspace string, keys int, dur time.Duration, writers int) (txnRunResult, error) {
	db, err := clsm.OpenPath("", clsm.WithMemtableSize(32<<20))
	if err != nil {
		return txnRunResult{}, err
	}
	defer db.Close()

	var (
		commits   atomic.Int64
		attempts  atomic.Int64
		conflicts atomic.Uint64
		stop      atomic.Bool
		wg        sync.WaitGroup
		firstErr  error
		errOnce   sync.Once
	)
	val := make([]byte, 128)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			k1 := make([]byte, 0, 16)
			k2 := make([]byte, 0, 16)
			for !stop.Load() {
				k1 = fmt.Appendf(k1[:0], "key-%06d", rng.Intn(keys))
				k2 = fmt.Appendf(k2[:0], "key-%06d", rng.Intn(keys))
				var err error
				switch mode {
				case "txn":
					// Read both keys, rewrite both: the read set makes
					// every concurrent overlap a validation conflict.
					for {
						attempts.Add(1)
						err = db.Txn(func(t *clsm.Txn) error {
							if _, _, err := t.Get(k1); err != nil {
								return err
							}
							if _, _, err := t.Get(k2); err != nil {
								return err
							}
							if err := t.Put(k1, val); err != nil {
								return err
							}
							return t.Put(k2, val)
						})
						if errors.Is(err, clsm.ErrTxnConflict) {
							conflicts.Add(1)
							continue
						}
						break
					}
				case "rmw":
					attempts.Add(1)
					err = db.RMW(k1, func(old []byte, ok bool) []byte { return val })
				case "batch":
					attempts.Add(1)
					var b clsm.Batch
					b.Put(k1, val)
					b.Put(k2, val)
					err = db.Write(&b)
				}
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				commits.Add(1)
			}
		}(int64(w + 1))
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	if firstErr != nil {
		return txnRunResult{}, firstErr
	}
	elapsed := time.Since(start)

	r := txnRunResult{
		Mode:      mode,
		Keyspace:  keyspace,
		Keys:      keys,
		Seconds:   elapsed.Seconds(),
		Commits:   int(commits.Load()),
		Attempts:  int(attempts.Load()),
		Conflicts: conflicts.Load(),
	}
	if r.Attempts > 0 {
		r.ConflictRate = float64(r.Conflicts) / float64(r.Attempts)
	}
	if elapsed > 0 {
		r.CommitsPerSec = float64(r.Commits) / elapsed.Seconds()
	}
	return r, nil
}
