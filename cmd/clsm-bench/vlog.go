package main

// The vlog profile prices key-value separation (docs/VALUELOG.md). The
// same update-heavy workload runs twice at large (4 KiB) values — once
// inline, once separated — comparing put throughput and the LSM rewrite
// volume per logical byte written (flush + compaction bytes / user
// bytes), the write-amplification axis the value log exists to flatten.
// A third pair runs at small (128 B) values with the threshold enabled
// but not reached, asserting the inline fast path is untouched when the
// feature is configured. Results land in BENCH_vlog.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clsm"
	"clsm/internal/harness"
)

// vlogRunResult is one cell of the profile.
type vlogRunResult struct {
	Name       string  `json:"name"`
	ValueSize  int     `json:"value_size"`
	Threshold  int     `json:"threshold"`
	Puts       int     `json:"puts"`
	Seconds    float64 `json:"seconds"`
	PutsPerSec float64 `json:"puts_per_sec"`
	// LogicalBytes is the user key+value volume written; RewriteBytes the
	// flush+compaction volume the LSM spent absorbing it. Their ratio is
	// the profile's write-amplification signal.
	RewriteBytes      uint64  `json:"rewrite_bytes"`
	LogicalBytes      uint64  `json:"logical_bytes"`
	RewritePerLogical float64 `json:"rewrite_per_logical"`
	VlogSegments      int     `json:"vlog_segments"`
	VlogGCRuns        uint64  `json:"vlog_gc_runs"`
}

// vlogReport is the BENCH_vlog.json schema.
type vlogReport struct {
	Scale   string          `json:"scale"`
	Writers int             `json:"writers"`
	Runs    []vlogRunResult `json:"runs"`
	// PutSpeedup is separated / inline put throughput at 4 KiB values.
	PutSpeedup float64 `json:"put_speedup"`
	// RewriteReduction is inline / separated rewrite-bytes-per-logical-byte
	// at 4 KiB values (how many fewer times the LSM rewrites each byte).
	RewriteReduction float64 `json:"rewrite_reduction"`
	// SmallValueParity is threshold-enabled / threshold-disabled put
	// throughput at 128 B values (all below the threshold): the cost of
	// merely configuring separation, expected within ±5% of 1.0.
	SmallValueParity float64 `json:"small_value_parity"`
}

// vlogProfile runs the cells and writes out (default BENCH_vlog.json).
func vlogProfile(sc harness.Scale, out string) error {
	writers := runtime.GOMAXPROCS(0)
	if writers < 4 {
		writers = 4
	}
	largeOps, smallOps := 20_000, 60_000
	switch sc.Name {
	case "smoke":
		largeOps, smallOps = 4_000, 12_000
	case "full":
		largeOps, smallOps = 60_000, 200_000
	}
	const largeVal, smallVal, keyspace = 4096, 128, 2048

	fmt.Printf("# vlog profile — %d large puts (%d B), %d small puts (%d B), %d writers, %d keys\n",
		largeOps, largeVal, smallOps, smallVal, writers, keyspace)

	grid := []struct {
		name      string
		valueSize int
		threshold int
		ops       int
	}{
		{"inline-4k", largeVal, 0, largeOps},
		{"vlog-4k", largeVal, 1024, largeOps},
		{"inline-small", smallVal, 0, smallOps},
		{"vlog-small", smallVal, 1024, smallOps},
	}
	rep := vlogReport{Scale: sc.Name, Writers: writers}
	cells := map[string]vlogRunResult{}
	for _, g := range grid {
		r, err := vlogRun(g.name, g.valueSize, g.threshold, g.ops, keyspace, writers)
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, r)
		cells[g.name] = r
		fmt.Printf("%-13s %9.0f puts/s   %.2f rewrite bytes per logical byte   (%d segments, %d gc runs)\n",
			r.Name, r.PutsPerSec, r.RewritePerLogical, r.VlogSegments, r.VlogGCRuns)
	}

	if in := cells["inline-4k"]; in.PutsPerSec > 0 {
		rep.PutSpeedup = cells["vlog-4k"].PutsPerSec / in.PutsPerSec
	}
	if v := cells["vlog-4k"]; v.RewritePerLogical > 0 {
		rep.RewriteReduction = cells["inline-4k"].RewritePerLogical / v.RewritePerLogical
	}
	if in := cells["inline-small"]; in.PutsPerSec > 0 {
		rep.SmallValueParity = cells["vlog-small"].PutsPerSec / in.PutsPerSec
	}
	fmt.Printf("put speedup %.2fx, rewrite reduction %.2fx, small-value parity %.3f\n",
		rep.PutSpeedup, rep.RewriteReduction, rep.SmallValueParity)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// vlogRun writes ops values of valueSize over a small rotating keyspace
// (update-heavy, so compactions constantly shadow old versions), settles
// the tree, and reads back the rewrite volume.
func vlogRun(name string, valueSize, threshold, ops, keyspace, writers int) (vlogRunResult, error) {
	db, err := clsm.OpenPath("",
		clsm.WithMemtableSize(1<<20),
		clsm.WithCompactionThreads(2),
		clsm.WithValueThreshold(threshold),
		clsm.WithValueLogSegmentSize(8<<20))
	if err != nil {
		return vlogRunResult{}, err
	}
	defer db.Close()

	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	var (
		next     atomic.Int64
		logical  atomic.Uint64
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := make([]byte, 0, 16)
			for {
				i := next.Add(1) - 1
				if i >= int64(ops) {
					return
				}
				key = fmt.Appendf(key[:0], "key-%06d", i%int64(keyspace))
				if err := db.Put(key, val); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				logical.Add(uint64(len(key) + len(val)))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return vlogRunResult{}, firstErr
	}

	// Settle outside the timed window: the write-amplification comparison
	// wants both trees fully compacted, and the value log fully collected.
	if err := db.Flush(); err != nil {
		return vlogRunResult{}, err
	}
	if err := db.CompactRange(); err != nil {
		return vlogRunResult{}, err
	}
	if err := db.CompactValueLog(context.Background()); err != nil {
		return vlogRunResult{}, err
	}
	m := db.Metrics()
	r := vlogRunResult{
		Name:         name,
		ValueSize:    valueSize,
		Threshold:    threshold,
		Puts:         ops,
		Seconds:      elapsed.Seconds(),
		RewriteBytes: m.FlushBytes + m.CompactionBytes,
		LogicalBytes: logical.Load(),
		VlogSegments: m.VlogSegments,
		VlogGCRuns:   m.VlogGCRuns,
	}
	if elapsed > 0 {
		r.PutsPerSec = float64(ops) / elapsed.Seconds()
	}
	if r.LogicalBytes > 0 {
		r.RewritePerLogical = float64(r.RewriteBytes) / float64(r.LogicalBytes)
	}
	return r, nil
}
