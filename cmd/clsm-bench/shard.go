package main

// The shard profile is the A/B experiment behind horizontal sharding
// (docs/SHARDING.md). Three questions, one report (BENCH_shard.json):
//
//  1. scaling — does hash-partitioning across N engines beat one engine
//     under concurrent writers? On a small machine the win comes from
//     write-amplification reduction (each shard's tree is shallower, so
//     background compaction burns less CPU per logical byte) plus N
//     independent commit paths.
//  2. parity — is the N=1 facade free? The sharded code path with one
//     shard must match the unsharded engine within noise.
//  3. governor — under a hot-shard workload, does the adaptive memory
//     governor beat the same store with frozen equal-split budgets?

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"clsm"
	"clsm/internal/cache"
	"clsm/internal/core"
	"clsm/internal/harness"
	"clsm/internal/obs"
	"clsm/internal/shard"
	"clsm/internal/storage"
	"clsm/internal/version"
)

// shardStore is the store surface the workload driver needs; *clsm.DB
// and *shard.DB both provide it.
type shardStore interface {
	Put(key, value []byte) error
	Metrics() clsm.Metrics
	Close() error
}

// shardRunResult is one configuration's measurement.
type shardRunResult struct {
	Config          string  `json:"config"`
	Seconds         float64 `json:"seconds"`
	Puts            int     `json:"puts"`
	PutsPerSec      float64 `json:"puts_per_sec"`
	LogicalMB       float64 `json:"logical_mb"`
	FlushMB         float64 `json:"flush_mb"`
	CompactionMB    float64 `json:"compaction_mb"`
	WriteAmp        float64 `json:"write_amp"` // (flush+compaction)/logical
	Flushes         uint64  `json:"flushes"`
	Compactions     uint64  `json:"compactions"`
	WriteStalls     uint64  `json:"write_stalls"`
	StallSeconds    float64 `json:"stall_seconds"`
	Levels          []int   `json:"levels"` // aggregate file count per level
	BudgetsAtEndMiB []int64 `json:"budgets_at_end_mib,omitempty"`
}

// shardReport is the BENCH_shard.json schema.
type shardReport struct {
	Scale   string `json:"scale"`
	Writers int    `json:"writers"`
	Shards  int    `json:"shards"`

	Scaling struct {
		Unsharded shardRunResult `json:"unsharded"`
		Sharded   shardRunResult `json:"sharded"`
		Speedup   float64        `json:"speedup"` // sharded/unsharded puts/s, >1 = sharding wins
	} `json:"scaling"`

	Parity struct {
		Unsharded shardRunResult `json:"unsharded"`
		OneShard  shardRunResult `json:"one_shard"`
		Ratio     float64        `json:"ratio"` // one_shard/unsharded puts/s, 1.0 = free facade
	} `json:"parity"`

	Governor struct {
		Static   shardRunResult `json:"static"`
		Adaptive shardRunResult `json:"adaptive"`
		Ratio    float64        `json:"ratio"` // adaptive/static puts/s, >=1 = governor helps
	} `json:"hot_shard_governor"`
}

// shardWorkload drives w concurrent writers of distinct keys for
// warm+dur and measures the steady-state window only: the first warm
// seconds (tree building, throttle auto-tune convergence) are excluded
// by snapshotting the cumulative engine counters at the warm boundary
// and reporting deltas. keys is a per-writer generator factory so
// workloads can control the shard routing (uniform vs hot-shard) and
// keep per-writer state without sharing.
func shardWorkload(cfgName string, db shardStore, warm, dur time.Duration, writers, valSize int,
	keys func(w int) func(dst []byte, i int) []byte) (shardRunResult, error) {
	val := make([]byte, valSize)
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int
		werr  error
	)
	start := time.Now()
	deadline := warm + dur
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			keyFn := keys(id)
			key := make([]byte, 0, 32)
			n, nWarm := 0, -1
			for i := 0; ; i++ {
				if i%64 == 0 {
					el := time.Since(start)
					if nWarm < 0 && el >= warm {
						nWarm = n
					}
					if el >= deadline {
						break
					}
				}
				key = keyFn(key[:0], i)
				if err := db.Put(key, val); err != nil {
					mu.Lock()
					if werr == nil {
						werr = err
					}
					mu.Unlock()
					return
				}
				n++
			}
			if nWarm < 0 {
				nWarm = n
			}
			mu.Lock()
			total += n - nWarm
			mu.Unlock()
		}(w)
	}
	// Snapshot cumulative counters at the warm boundary; the report is
	// the steady-state delta.
	time.Sleep(warm)
	m0 := db.Metrics()
	measureStart := time.Now()
	wg.Wait()
	elapsed := time.Since(measureStart)
	if werr != nil {
		return shardRunResult{}, fmt.Errorf("%s: %w", cfgName, werr)
	}
	m := db.Metrics()
	logical := float64(total) * float64(valSize+24)
	res := shardRunResult{
		Config:       cfgName,
		Seconds:      elapsed.Seconds(),
		Puts:         total,
		PutsPerSec:   float64(total) / elapsed.Seconds(),
		LogicalMB:    logical / (1 << 20),
		FlushMB:      float64(m.FlushBytes-m0.FlushBytes) / (1 << 20),
		CompactionMB: float64(m.CompactionBytes-m0.CompactionBytes) / (1 << 20),
		Flushes:      m.Flushes - m0.Flushes,
		Compactions:  m.Compactions - m0.Compactions,
		WriteStalls:  m.WriteStalls - m0.WriteStalls,
		StallSeconds: (m.StallTime - m0.StallTime).Seconds(),
	}
	for l := len(m.LevelSize) - 1; l >= 0; l-- {
		if m.LevelSize[l] > 0 {
			res.Levels = m.LevelSize[:l+1]
			break
		}
	}
	if logical > 0 {
		res.WriteAmp = (res.FlushMB + res.CompactionMB) * (1 << 20) / logical
	}
	return res, nil
}

// shardFixedWorkload has every writer put exactly ops distinct keys and
// measures the wall time for the whole volume. With a memtable sized to
// absorb it all, this is a deterministic put-path measurement — no
// flush, compaction, or throttle feedback in the loop.
func shardFixedWorkload(cfgName string, db shardStore, ops, writers, valSize int) (shardRunResult, error) {
	val := make([]byte, valSize)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		werr error
	)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			key := make([]byte, 0, 32)
			for i := 0; i < ops; i++ {
				key = fmt.Appendf(key[:0], "w%02d-key-%09d", id, i)
				if err := db.Put(key, val); err != nil {
					mu.Lock()
					if werr == nil {
						werr = err
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if werr != nil {
		return shardRunResult{}, fmt.Errorf("%s: %w", cfgName, werr)
	}
	total := ops * writers
	return shardRunResult{
		Config:     cfgName,
		Seconds:    elapsed.Seconds(),
		Puts:       total,
		PutsPerSec: float64(total) / elapsed.Seconds(),
		LogicalMB:  float64(total) * float64(valSize+24) / (1 << 20),
	}, nil
}

// overwriteKeys cycles each writer over k distinct keys — the classic
// steady-state overwrite benchmark. The live set is bounded (writers ×
// k keys), so store depth reflects the engine's ability to reclaim
// overwritten versions, which is exactly where write amplification
// diverges between one deep tree and N shallow ones.
func overwriteKeys(k int) func(w int) func(dst []byte, i int) []byte {
	return func(w int) func(dst []byte, i int) []byte {
		return func(dst []byte, i int) []byte {
			return fmt.Appendf(dst, "w%02d-key-%09d", w, i%k)
		}
	}
}

// shardProfile runs the three experiments and writes BENCH_shard.json.
func shardProfile(sc harness.Scale, shards int, out string) error {
	warm := 2 * time.Second
	dur := 6 * time.Second
	writers := 8
	valSize := 1024
	switch sc.Name {
	case "smoke":
		warm, dur = time.Second, 2*time.Second
	case "full":
		warm, dur = 4*time.Second, 15*time.Second
	}
	// Deliberately tight store shape: a small memtable and base level
	// force the unsharded store's tree deep enough that compaction
	// write-amplification dominates, which is exactly the regime
	// sharding addresses (each shard carries 1/N of the data).
	tight := []clsm.Option{
		clsm.WithMemtableSize(256 << 10),
		clsm.WithBlockCacheSize(8 << 20),
	}
	tightDisk := func(o *clsm.Options) {
		o.BaseLevelBytes = 1 << 20
		o.TableFileSize = 256 << 10
	}

	fmt.Printf("# shard profile — %v warm + %v measured per run, %d writers, %d B values, %d shards\n",
		warm, dur, writers, valSize, shards)

	rep := shardReport{Scale: sc.Name, Writers: writers, Shards: shards}

	// 1. Scaling: unsharded vs N shards, identical options otherwise.
	run := func(name string, vs, keysPerWriter int, opts ...clsm.Option) (shardRunResult, error) {
		// Settle between runs so one config's garbage doesn't tax the next.
		runtime.GC()
		db, err := clsm.OpenPath("", append(append([]clsm.Option{}, tight...), append(opts, tightDisk)...)...)
		if err != nil {
			return shardRunResult{}, err
		}
		res, werr := shardWorkload(name, db, warm, dur, writers, vs, overwriteKeys(keysPerWriter))
		if cerr := db.Close(); werr == nil && cerr != nil {
			werr = cerr
		}
		return res, werr
	}

	var err error
	if rep.Scaling.Unsharded, err = run("unsharded", valSize, 1024); err != nil {
		return err
	}
	if rep.Scaling.Sharded, err = run(fmt.Sprintf("sharded-%d", shards), valSize, 1024, clsm.WithShards(shards)); err != nil {
		return err
	}
	rep.Scaling.Speedup = rep.Scaling.Sharded.PutsPerSec / rep.Scaling.Unsharded.PutsPerSec
	fmt.Printf("scaling:  unsharded %9.0f puts/s (amp %.2f, stall %.1fs, levels %v)   %d shards %9.0f puts/s (amp %.2f, stall %.1fs, levels %v)   speedup %.2fx\n",
		rep.Scaling.Unsharded.PutsPerSec, rep.Scaling.Unsharded.WriteAmp,
		rep.Scaling.Unsharded.StallSeconds, rep.Scaling.Unsharded.Levels,
		shards, rep.Scaling.Sharded.PutsPerSec, rep.Scaling.Sharded.WriteAmp,
		rep.Scaling.Sharded.StallSeconds, rep.Scaling.Sharded.Levels,
		rep.Scaling.Speedup)

	// 2. Parity: the facade with one shard vs the bare engine. The tax
	// the facade could add lives on the put path (routing, indirection),
	// so measure exactly that: a fixed volume of puts into a memtable big
	// enough that no flush, compaction, or throttle feedback runs during
	// the measurement. The reported ratio is the median of interleaved
	// pairs so one slow run (GC, scheduler) cannot fake a facade tax.
	pairs := 5
	parityOps := 40000 // per writer
	if sc.Name == "smoke" {
		pairs, parityOps = 1, 15000
	}
	parityRun := func(name string, opts ...clsm.Option) (shardRunResult, error) {
		runtime.GC()
		all := append([]clsm.Option{
			clsm.WithMemtableSize(512 << 20),
			clsm.WithBlockCacheSize(8 << 20),
		}, opts...)
		db, err := clsm.OpenPath("", all...)
		if err != nil {
			return shardRunResult{}, err
		}
		res, werr := shardFixedWorkload(name, db, parityOps, writers, 256)
		if cerr := db.Close(); werr == nil && cerr != nil {
			werr = cerr
		}
		return res, werr
	}
	var ratios []float64
	for p := 0; p < pairs; p++ {
		var base, facade shardRunResult
		var err error
		// Alternate which config runs first so order effects cancel.
		if p%2 == 0 {
			if base, err = parityRun("parity-unsharded"); err != nil {
				return err
			}
			if facade, err = parityRun("parity-one-shard", clsm.WithShards(1)); err != nil {
				return err
			}
		} else {
			if facade, err = parityRun("parity-one-shard", clsm.WithShards(1)); err != nil {
				return err
			}
			if base, err = parityRun("parity-unsharded"); err != nil {
				return err
			}
		}
		ratios = append(ratios, facade.PutsPerSec/base.PutsPerSec)
		rep.Parity.Unsharded, rep.Parity.OneShard = base, facade
	}
	sort.Float64s(ratios)
	rep.Parity.Ratio = ratios[len(ratios)/2]
	fmt.Printf("parity:   unsharded %9.0f puts/s   one-shard facade %9.0f puts/s   median ratio %.3f (pairs %v)\n",
		rep.Parity.Unsharded.PutsPerSec, rep.Parity.OneShard.PutsPerSec, rep.Parity.Ratio, ratios)

	// 3. Governor: hot-shard workload (90% of writes land on shard 0),
	// adaptive arbitration vs frozen equal split, on identical stores.
	hotKeys := hotShardKeyFn(shards)
	govRun := func(name string, static bool) (shardRunResult, error) {
		runtime.GC()
		db, err := openGovStore(shards, static)
		if err != nil {
			return shardRunResult{}, err
		}
		res, werr := shardWorkload(name, db, warm, dur, writers, valSize, hotKeys)
		if werr == nil {
			for _, b := range db.MemtableBudgets() {
				res.BudgetsAtEndMiB = append(res.BudgetsAtEndMiB, b>>20)
			}
		}
		if cerr := db.Close(); werr == nil && cerr != nil {
			werr = cerr
		}
		return res, werr
	}
	if rep.Governor.Static, err = govRun("hot-static", true); err != nil {
		return err
	}
	if rep.Governor.Adaptive, err = govRun("hot-adaptive", false); err != nil {
		return err
	}
	rep.Governor.Ratio = rep.Governor.Adaptive.PutsPerSec / rep.Governor.Static.PutsPerSec
	fmt.Printf("governor: static    %9.0f puts/s (amp %.2f)   adaptive %9.0f puts/s (amp %.2f, budgets %v MiB)   ratio %.3f\n",
		rep.Governor.Static.PutsPerSec, rep.Governor.Static.WriteAmp,
		rep.Governor.Adaptive.PutsPerSec, rep.Governor.Adaptive.WriteAmp,
		rep.Governor.Adaptive.BudgetsAtEndMiB, rep.Governor.Ratio)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// hotShardKeyFn returns a key-generator factory where ~90% of writes
// route to shard 0: each writer scans its own dense counter forward for
// keys that hash to shard 0 (distinct every call), with a 10% uniform
// remainder to keep the other shards warm.
func hotShardKeyFn(n int) func(w int) func(dst []byte, i int) []byte {
	return func(w int) func(dst []byte, i int) []byte {
		next := 0
		return func(dst []byte, i int) []byte {
			if i%10 == 9 {
				return fmt.Appendf(dst, "cold-w%02d-%09d", w, i)
			}
			// Amortized ~n probes per key; the fmt dominates either way.
			for {
				dst = fmt.Appendf(dst[:0], "hot-w%02d-%09d", w, next)
				next++
				if shard.IndexOf(dst, n) == 0 {
					return dst
				}
			}
		}
	}
}

// openGovStore builds an n-shard store over MemFS with a deliberately
// small shared memory pool, with the governor either live or frozen to
// the equal split (the A/B pair).
func openGovStore(n int, static bool) (*shard.DB, error) {
	const (
		perShardMem = 512 << 10
		cacheSize   = 4 << 20
	)
	pool := cache.New(cacheSize)
	var opts shard.Options
	for i := 0; i < n; i++ {
		o := obs.New()
		o.Trace.SetShard(i)
		opts.Engines = append(opts.Engines, core.Options{
			FS:           storage.NewMemFS(),
			MemtableSize: perShardMem,
			BlockCache:   pool.View(i),
			Observer:     o,
			Disk: version.Options{
				BaseLevelBytes: 2 << 20,
				TableFileSize:  512 << 10,
			},
		})
	}
	opts.Governor = shard.GovernorConfig{
		TotalBytes: int64(n)*perShardMem + cacheSize,
		Cache:      pool,
		Static:     static,
	}
	return shard.Open(opts)
}
