package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"clsm"
	"clsm/clsmclient"
	"clsm/internal/server"
)

// benchResult is the BENCH_server.json schema.
type benchResult struct {
	Bench    string `json:"bench"`
	Duration string `json:"duration_per_point"`

	// SingleConnOpsPerSec is the classic-RPC baseline: one connection,
	// one request in flight at a time (MaxInflight=1).
	SingleConnOpsPerSec float64 `json:"single_conn_ops_per_sec"`

	// Pipelined sweeps connection count with deep pipelining per
	// connection.
	Pipelined []sweepPoint `json:"pipelined"`

	// Pipelined8cVsSingleConn is the acceptance ratio: pipelined
	// throughput at 8 connections over the single-connection baseline.
	Pipelined8cVsSingleConn float64 `json:"pipelined_8c_vs_single_conn"`

	// GroupCommit measures WAL sync amortization under concurrent
	// durable writers: remote clients with SyncWrites on, syncs/op < 1
	// means the server's cross-connection coalescing + the engine's
	// group commit shared fsyncs between clients.
	GroupCommit groupCommitResult `json:"group_commit"`
}

type sweepPoint struct {
	Conns     int     `json:"conns"`
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

type groupCommitResult struct {
	SyncWriters int     `json:"sync_writers"`
	Ops         int64   `json:"ops"`
	WALSyncs    int64   `json:"wal_syncs"`
	SyncsPerOp  float64 `json:"syncs_per_op"`
}

const benchPointDuration = 1500 * time.Millisecond

// runBench measures the two acceptance numbers of the network layer —
// pipelined connection scaling and group-commit sync amortization — and
// writes them to outPath as JSON.
func runBench(outPath string) error {
	res := benchResult{Bench: "server", Duration: benchPointDuration.String()}

	// --- throughput scaling: volatile store, async writes, so the
	// network layer (not the device) is what's measured. Each point gets
	// a fresh store so earlier points' accumulated data (GC pressure,
	// background flushes) can't tax later ones.
	single, err := benchPoint(1, 1)
	if err != nil {
		return err
	}
	res.SingleConnOpsPerSec = single.OpsPerSec
	fmt.Printf("single connection, unpipelined: %11.0f ops/s\n", single.OpsPerSec)

	for _, conns := range []int{1, 2, 4, 8} {
		p, err := benchPoint(conns, 16)
		if err != nil {
			return err
		}
		p.Conns = conns
		res.Pipelined = append(res.Pipelined, p)
		fmt.Printf("pipelined, %d connection(s):     %11.0f ops/s\n", conns, p.OpsPerSec)
	}
	last := res.Pipelined[len(res.Pipelined)-1]
	res.Pipelined8cVsSingleConn = last.OpsPerSec / res.SingleConnOpsPerSec
	fmt.Printf("pipelined 8c vs single-conn:   %11.2fx\n", res.Pipelined8cVsSingleConn)

	// --- group commit: durable store on the real filesystem, sync
	// writes, concurrent writers across 8 connections.
	gc, err := benchGroupCommit()
	if err != nil {
		return err
	}
	res.GroupCommit = gc
	fmt.Printf("group commit, %d sync writers:  %11.3f syncs/op (%d syncs / %d ops)\n",
		gc.SyncWriters, gc.SyncsPerOp, gc.WALSyncs, gc.Ops)

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// benchPoint measures one throughput point against a fresh volatile
// store, with a short warmup before the timed window.
func benchPoint(conns, depth int) (sweepPoint, error) {
	db, err := clsm.OpenPath("")
	if err != nil {
		return sweepPoint{}, err
	}
	defer db.Close()
	srv := server.New(engine{db}, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return sweepPoint{}, err
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	if _, err := driveLoad(addr, conns, depth, benchPointDuration/5); err != nil {
		return sweepPoint{}, err
	}
	return driveLoad(addr, conns, depth, benchPointDuration)
}

// driveLoad runs a put-heavy workload for d: conns clients, each with
// depth goroutines keeping depth requests in flight, all writing disjoint
// keys. Returns completed ops and throughput.
func driveLoad(addr string, conns, depth int, d time.Duration) (sweepPoint, error) {
	clients := make([]*clsmclient.Client, conns)
	for i := range clients {
		c, err := clsmclient.Dial(addr,
			clsmclient.WithPoolSize(1), clsmclient.WithMaxInflight(depth))
		if err != nil {
			return sweepPoint{}, err
		}
		clients[i] = c
		defer c.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	var ops atomic.Int64
	var failed atomic.Int64
	var wg sync.WaitGroup
	value := make([]byte, 100)
	for ci, c := range clients {
		for w := 0; w < depth; w++ {
			wg.Add(1)
			go func(c *clsmclient.Client, ci, w int) {
				defer wg.Done()
				keys := make([][]byte, 512)
				for i := range keys {
					keys[i] = []byte(fmt.Sprintf("c%02d-w%02d-%06d", ci, w, i))
				}
				for i := 0; ctx.Err() == nil; i++ {
					if err := c.Put(ctx, keys[i%len(keys)], value); err != nil {
						if ctx.Err() == nil {
							failed.Add(1)
						}
						return
					}
					ops.Add(1)
				}
			}(c, ci, w)
		}
	}
	wg.Wait()
	if n := failed.Load(); n > 0 {
		return sweepPoint{}, fmt.Errorf("%d workers failed under load", n)
	}
	return sweepPoint{
		Ops:       ops.Load(),
		OpsPerSec: float64(ops.Load()) / d.Seconds(),
	}, nil
}

// benchGroupCommit counts device syncs per durable remote write with 8
// connections writing concurrently. The engine's WAL group commit plus
// the server's cross-connection batching share each fsync across every
// write that was in flight when it started.
func benchGroupCommit() (groupCommitResult, error) {
	dir, err := os.MkdirTemp("", "clsm-server-bench-")
	if err != nil {
		return groupCommitResult{}, err
	}
	defer os.RemoveAll(dir)

	db, err := clsm.OpenPath(dir, clsm.WithSyncWrites(true))
	if err != nil {
		return groupCommitResult{}, err
	}
	defer db.Close()
	srv := server.New(engine{db}, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return groupCommitResult{}, err
	}
	go srv.Serve(ln)
	defer srv.Close()

	const conns, depth = 8, 16
	syncs0 := db.Observer().WALSyncs.Load()
	p, err := driveLoad(ln.Addr().String(), conns, depth, benchPointDuration)
	if err != nil {
		return groupCommitResult{}, err
	}
	syncs := int64(db.Observer().WALSyncs.Load() - syncs0)
	return groupCommitResult{
		SyncWriters: conns * depth,
		Ops:         p.Ops,
		WALSyncs:    syncs,
		SyncsPerOp:  float64(syncs) / float64(p.Ops),
	}, nil
}
