package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"clsm"
	"clsm/clsmclient"
	"clsm/internal/server"
)

// runSelftest is the smoke gate scripts/check.sh runs on every PR: an
// in-process server, eight pipelining clients running a verified mixed
// workload, a clean shutdown, and a stdlib-only goroutine-leak check
// (count + stack diff, with a settle window for runtime bookkeeping).
func runSelftest() error {
	baseline := runtime.NumGoroutine()

	db, err := clsm.OpenPath("") // volatile store; the gate tests the network layer
	if err != nil {
		return err
	}
	srv := server.New(engine{db}, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	if err := selftestWorkload(addr); err != nil {
		srv.Close()
		db.Close()
		return err
	}

	if err := srv.Close(); err != nil {
		return fmt.Errorf("server close: %w", err)
	}
	if err := db.Close(); err != nil {
		return fmt.Errorf("store close: %w", err)
	}
	return checkGoroutines(baseline)
}

func selftestWorkload(addr string) error {
	const clients = 8
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errCh <- clientWorkload(ctx, addr, g)
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}

	// Cross-client verification plus a status probe on one last client.
	c, err := clsmclient.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	keys := make([][]byte, clients)
	for g := range keys {
		keys[g] = []byte(fmt.Sprintf("c%d-final", g))
	}
	vals, err := c.MultiGet(ctx, keys)
	if err != nil {
		return err
	}
	for g, v := range vals {
		want := fmt.Sprintf("done-%d", g)
		if !v.Exists || string(v.Data) != want {
			return fmt.Errorf("client %d final key = %q,%v want %q", g, v.Data, v.Exists, want)
		}
	}
	st, err := c.Status(ctx)
	if err != nil {
		return fmt.Errorf("status: %w", err)
	}
	if st.Health != uint8(clsm.Healthy) {
		return fmt.Errorf("server unhealthy after workload: state %d (%s)", st.Health, st.HealthMsg)
	}
	return nil
}

// clientWorkload drives one pipelined client through puts, batched
// writes, deletes, point and batched reads, and a scan, verifying every
// read against what this client wrote (keys are sharded per client, so
// expectations are exact).
func clientWorkload(ctx context.Context, addr string, g int) error {
	c, err := clsmclient.Dial(addr, clsmclient.WithMaxInflight(64))
	if err != nil {
		return err
	}
	defer c.Close()

	key := func(i int) []byte { return []byte(fmt.Sprintf("c%d-k%03d", g, i)) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("v%d-%03d", g, i)) }
	const n = 200

	// Pipelined puts: fire-and-collect through goroutines sharing c.
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.Put(ctx, key(i), val(i)); err != nil {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return fmt.Errorf("client %d pipelined put: %w", g, err)
	}

	// Atomic batch: overwrite a range and delete its tail.
	var b clsmclient.Batch
	for i := 0; i < 10; i++ {
		b.Put(key(i), append(val(i), '!'))
	}
	b.Delete(key(n - 1))
	if err := c.Write(ctx, &b); err != nil {
		return fmt.Errorf("client %d batch: %w", g, err)
	}

	// Point reads.
	v, ok, err := c.Get(ctx, key(0))
	if err != nil || !ok || !bytes.Equal(v, append(val(0), '!')) {
		return fmt.Errorf("client %d get = %q,%v,%v", g, v, ok, err)
	}
	if _, ok, err = c.Get(ctx, key(n-1)); err != nil || ok {
		return fmt.Errorf("client %d deleted key visible (ok=%v err=%v)", g, ok, err)
	}

	// Batched read.
	vals, err := c.MultiGet(ctx, [][]byte{key(1), key(n - 1), key(2)})
	if err != nil {
		return fmt.Errorf("client %d multiget: %w", g, err)
	}
	if !vals[0].Exists || vals[1].Exists || !vals[2].Exists {
		return fmt.Errorf("client %d multiget existence = %+v", g, vals)
	}

	// Scan the shard: ordered, and exactly n-1 live keys.
	kvs, err := c.Scan(ctx, []byte(fmt.Sprintf("c%d-k", g)), n+10)
	if err != nil {
		return fmt.Errorf("client %d scan: %w", g, err)
	}
	count := 0
	prefix := fmt.Sprintf("c%d-k", g)
	for _, kv := range kvs {
		if !bytes.HasPrefix(kv.Key, []byte(prefix)) {
			break
		}
		count++
	}
	if count != n-1 {
		return fmt.Errorf("client %d scan saw %d keys, want %d", g, count, n-1)
	}

	return c.Put(ctx, []byte(fmt.Sprintf("c%d-final", g)), []byte(fmt.Sprintf("done-%d", g)))
}

// checkGoroutines waits (bounded) for the goroutine count to settle back
// to the pre-test baseline, then reports a full stack dump if it never
// does — the poor man's goleak, with zero dependencies.
func checkGoroutines(baseline int) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= baseline {
			return nil
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			return fmt.Errorf("goroutine leak: %d at start, %d after shutdown\n%s",
				baseline, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
