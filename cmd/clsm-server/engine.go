package main

import (
	"clsm"
	"clsm/internal/server"
)

// engine bridges *clsm.DB to server.Engine: the facade's NewIterator
// returns its own concrete iterator type, the server wants the
// interface. Everything else (including the sharded store's
// ShardObservers capability, which the Stats opcode picks up) promotes
// through the embedding.
type engine struct{ *clsm.DB }

func (e engine) NewIterator(opts ...clsm.IterOptions) (server.Iterator, error) {
	it, err := e.DB.NewIterator(opts...)
	if err != nil {
		return nil, err
	}
	return it, nil
}
