// clsm-server serves one clsm store over TCP with the pipelined binary
// protocol of docs/NETWORK.md (clients: the clsmclient package, the
// `clsm -remote` CLI).
//
//	clsm-server -db /var/lib/clsm -addr :4377
//
// Concurrent clients share the engine's group commit: the server merges
// in-flight writes from every connection into single engine batches, so
// adding clients amortizes WAL syncs instead of multiplying them.
//
// Operational modes:
//
//	-selftest   run an in-process server + pipelined clients, verify
//	            results, shut down, and fail on any leaked goroutine
//	-bench      measure pipelined throughput scaling and group-commit
//	            sync amortization; write BENCH_server.json
//	-debug-addr serve /debug/vars (expvar, including the engine's
//	            observability snapshot) on a side HTTP listener
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clsm"
	"clsm/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":4377", "address to serve the wire protocol on")
		dbPath    = flag.String("db", "", "store directory (empty = volatile in-memory store)")
		sync      = flag.Bool("sync", false, "make every write wait for WAL durability")
		shards    = flag.Int("shards", 0, "hash-partition the store across this many engines (0 = unsharded; see docs/SHARDING.md)")
		debugAddr = flag.String("debug-addr", "", "optional address for the /debug/vars HTTP endpoint")
		maxBatch  = flag.Int("max-batch", 0, "max requests merged per engine commit (0 = default)")
		inflight  = flag.Int("max-inflight", 0, "max in-flight requests per connection (0 = default)")
		drain     = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests before severing connections")

		selftest = flag.Bool("selftest", false, "run the in-process smoke + goroutine-leak test and exit")
		bench    = flag.Bool("bench", false, "run the server benchmark and exit")
		benchOut = flag.String("bench-out", "BENCH_server.json", "benchmark result file")
	)
	flag.Parse()

	if *selftest {
		if err := runSelftest(); err != nil {
			log.Fatalf("selftest: FAIL: %v", err)
		}
		fmt.Println("selftest: PASS")
		return
	}
	if *bench {
		if err := runBench(*benchOut); err != nil {
			log.Fatalf("bench: %v", err)
		}
		return
	}

	openOpts := []clsm.Option{clsm.WithSyncWrites(*sync)}
	if *shards != 0 {
		openOpts = append(openOpts, clsm.WithShards(*shards))
	}
	db, err := clsm.OpenPath(*dbPath, openOpts...)
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	srv := server.New(engine{db}, server.Config{MaxBatch: *maxBatch, MaxInflight: *inflight})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	log.Printf("serving %s on %s (db=%q sync=%v)", "clsm wire protocol", ln.Addr(), *dbPath, *sync)

	if *debugAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/debug/vars", clsm.DebugHandler())
			log.Printf("debug endpoint on http://%s/debug/vars", *debugAddr)
			log.Printf("debug server: %v", http.ListenAndServe(*debugAddr, mux))
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		log.Printf("%v: draining connections (timeout %v)", sig, *drain)
	case err := <-serveErr:
		if err != nil {
			log.Printf("serve: %v", err)
		}
	}
	// Graceful drain: in-flight requests finish and their responses reach
	// the wire before the engine closes underneath them. A second signal
	// or the -drain-timeout deadline cuts the grace short.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	go func() {
		<-sigc
		log.Printf("second signal: severing connections")
		cancel()
	}()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("server shutdown: %v (connections severed)", err)
	}
	cancel()
	if err := db.Close(); err != nil {
		log.Fatalf("store close: %v", err)
	}
}
