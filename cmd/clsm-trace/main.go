// Command clsm-trace records and replays operation traces — the bridge for
// running real production logs (as the paper's §5.2 evaluation does)
// against any store model.
//
// Usage:
//
//	# produce a shareable synthetic trace (production-like distribution)
//	clsm-trace record -out trace.bin -ops 1000000 -dist production -reads 0.9
//
//	# replay a trace against a store model
//	clsm-trace replay -in trace.bin -store cLSM -threads 8 -preload 100000
//
// The trace format is documented in docs/FORMATS.md; convert your own logs
// to it to benchmark with real traffic.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"clsm/internal/baseline"
	"clsm/internal/harness"
	"clsm/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		out      = fs.String("out", "trace.bin", "output trace file")
		ops      = fs.Int64("ops", 100_000, "operations to record")
		keyspace = fs.Int64("keyspace", 1_000_000, "distinct keys")
		keySize  = fs.Int("keysize", 40, "key bytes")
		valSize  = fs.Int("valsize", 1024, "value bytes")
		dist     = fs.String("dist", "production", "key distribution: uniform|hotspot|zipf|production")
		reads    = fs.Float64("reads", 0.9, "fraction of gets")
		scans    = fs.Float64("scans", 0, "fraction of scans (10-20 keys)")
		seed     = fs.Int64("seed", 42, "rng seed")
	)
	fs.Parse(args)

	var d workload.Dist
	switch *dist {
	case "uniform":
		d = workload.Uniform
	case "hotspot":
		d = workload.Hotspot
	case "zipf":
		d = workload.Zipf
	case "production":
		d = workload.ProductionSynth
	default:
		fatal(fmt.Errorf("unknown distribution %q", *dist))
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	cfg := workload.Config{KeySpace: *keyspace, KeySize: *keySize, ValueSize: *valSize, Dist: d}
	mix := workload.Mix{GetRatio: *reads, ScanRatio: *scans, ScanMin: 10, ScanMax: 20}
	if err := workload.RecordSynthetic(f, cfg, mix, *ops, *seed); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st, _ := os.Stat(*out)
	fmt.Printf("recorded %d ops to %s (%d bytes)\n", *ops, *out, st.Size())
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		in      = fs.String("in", "trace.bin", "input trace file")
		store   = fs.String("store", string(baseline.NameCLSM), "store model")
		threads = fs.Int("threads", 4, "replay worker goroutines")
		preload = fs.Int64("preload", 0, "keys to preload before replay")
		scale   = fs.String("scale", "small", "engine sizing preset")
	)
	fs.Parse(args)

	sc, err := harness.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	s, err := baseline.New(baseline.Name(*store), sc.CoreOptions())
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	if *preload > 0 {
		cfg := workload.Config{KeySpace: *preload, KeySize: 40, ValueSize: 1024}
		if err := harness.Preload(s, cfg, *preload, *threads); err != nil {
			fatal(err)
		}
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	res, err := harness.ReplayTrace(s, f, *threads)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d ops in %v — %.0f ops/s, %.0f keys/s\n",
		res.Ops, res.Elapsed.Round(time.Millisecond), res.Throughput(), res.KeysPerSec())
	fmt.Printf("latency p50=%v p90=%v p99=%v\n",
		res.Hist.Quantile(0.5).Round(time.Microsecond),
		res.Hist.Quantile(0.9).Round(time.Microsecond),
		res.Hist.Quantile(0.99).Round(time.Microsecond))
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: clsm-trace record|replay [flags] (see -h per subcommand)")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clsm-trace:", err)
	os.Exit(1)
}
