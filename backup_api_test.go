package clsm

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// TestCheckpointOpensAsStore: DB.Checkpoint produces a directory that
// OpenPath serves as an independent store, immune to writes that land
// after the checkpoint.
func TestCheckpointOpensAsStore(t *testing.T) {
	root := t.TempDir()
	db, err := OpenPath(filepath.Join(root, "live"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	ckpt := filepath.Join(root, "ckpt")
	n, err := db.Checkpoint(ckpt)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if n == 0 {
		t.Fatal("checkpoint linked no tables")
	}
	if err := db.Put([]byte("k000"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPath(ckpt)
	if err != nil {
		t.Fatalf("open checkpoint: %v", err)
	}
	defer re.Close()
	v, ok, err := re.Get([]byte("k000"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("checkpoint k000 = %q,%v,%v, want v1", v, ok, err)
	}
}

// TestBackupRestoreRoundTrip drives the public backup surface end to end
// on disk: two incremental backups, point-in-time restore of the first,
// full restore of the latest.
func TestBackupRestoreRoundTrip(t *testing.T) {
	root := t.TempDir()
	db, err := OpenPath(filepath.Join(root, "live"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	be, err := NewBackupEngine(filepath.Join(root, "remote"), RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := be.Latest(); !errors.Is(err, ErrNoBackup) {
		t.Fatalf("Latest on empty remote = %v, want ErrNoBackup", err)
	}

	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("a%03d", i)), []byte("one")); err != nil {
			t.Fatal(err)
		}
	}
	m1, err := db.Backup(be)
	if err != nil {
		t.Fatalf("backup 1: %v", err)
	}
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("b%03d", i)), []byte("two")); err != nil {
			t.Fatal(err)
		}
	}
	m2, err := db.Backup(be)
	if err != nil {
		t.Fatalf("backup 2: %v", err)
	}
	if m1.ID != 1 || m2.ID != 2 || m2.Prev != 1 {
		t.Fatalf("manifest ids = %d, %d (prev %d)", m1.ID, m2.ID, m2.Prev)
	}
	if id, _, err := be.Latest(); err != nil || id != 2 {
		t.Fatalf("Latest = %d, %v", id, err)
	}
	if got := db.Observer().BackupFilesSkipped.Load(); got == 0 {
		t.Error("second backup skipped no files — incremental shipping broken")
	}

	// Point-in-time: backup 1 has a-keys only.
	p1 := filepath.Join(root, "restore-1")
	if _, err := be.Restore(1, p1); err != nil {
		t.Fatalf("restore 1: %v", err)
	}
	r1, err := OpenPath(p1)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	if _, ok, _ := r1.Get([]byte("a000")); !ok {
		t.Error("restore of backup 1 lost a-key")
	}
	if _, ok, _ := r1.Get([]byte("b000")); ok {
		t.Error("restore of backup 1 surfaced a key written after it")
	}

	// Latest: both generations, and the restored store accepts writes.
	p2 := filepath.Join(root, "restore-latest")
	if _, err := be.Restore(0, p2); err != nil {
		t.Fatalf("restore latest: %v", err)
	}
	r2, err := OpenPath(p2)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	for _, k := range []string{"a099", "b099"} {
		if _, ok, _ := r2.Get([]byte(k)); !ok {
			t.Errorf("restore of latest lost %s", k)
		}
	}
	if err := r2.Put([]byte("new"), []byte("x")); err != nil {
		t.Errorf("restored store rejected a write: %v", err)
	}
}

// TestShardedCheckpointAndBackup: a sharded store checkpoints into a
// sharded layout (marker + per-shard images) and its backups restore into
// a directory that reopens with the same WithShards.
func TestShardedCheckpointAndBackup(t *testing.T) {
	root := t.TempDir()
	db, err := OpenSharded(filepath.Join(root, "live"), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	ckpt := filepath.Join(root, "ckpt")
	if _, err := db.Checkpoint(ckpt); err != nil {
		t.Fatalf("sharded checkpoint: %v", err)
	}
	ck, err := OpenSharded(ckpt, 2)
	if err != nil {
		t.Fatalf("open sharded checkpoint: %v", err)
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%04d", i)
		v, ok, err := ck.Get([]byte(k))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("checkpoint %s = %q,%v,%v", k, v, ok, err)
		}
	}
	ck.Close()

	be, err := NewBackupEngine(filepath.Join(root, "remote"), RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := db.Backup(be)
	if err != nil {
		t.Fatalf("sharded backup: %v", err)
	}
	if len(m.Stores) != 2 {
		t.Fatalf("sharded backup has %d store images, want 2", len(m.Stores))
	}

	restored := filepath.Join(root, "restored")
	if _, err := be.Restore(0, restored); err != nil {
		t.Fatalf("sharded restore: %v", err)
	}
	// The restored layout must reject an unsharded open and accept the
	// original shard count.
	if _, err := OpenPath(restored); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("unsharded open of sharded restore = %v, want ErrInvalidOptions", err)
	}
	re, err := OpenSharded(restored, 2)
	if err != nil {
		t.Fatalf("open sharded restore: %v", err)
	}
	defer re.Close()
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%04d", i)
		v, ok, err := re.Get([]byte(k))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("restored %s = %q,%v,%v", k, v, ok, err)
		}
	}
}
