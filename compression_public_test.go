package clsm_test

import (
	"bytes"
	"fmt"
	"testing"

	"clsm"
)

// Compressed stores must round-trip through close/reopen and CompactRange.
func TestCompressionEndToEnd(t *testing.T) {
	dir := t.TempDir()
	open := func() *clsm.DB {
		db, err := clsm.Open(clsm.Options{
			Path:         dir,
			Compression:  true,
			MemtableSize: 64 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	val := bytes.Repeat([]byte("compressible "), 20)
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	logical := uint64(2000 * (6 + len(val)))
	if m.DiskBytes >= logical/2 {
		t.Errorf("compression ineffective: disk=%d logical=%d", m.DiskBytes, logical)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := open()
	defer db2.Close()
	for i := 0; i < 2000; i += 97 {
		v, ok, err := db2.Get([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil || !ok || !bytes.Equal(v, val) {
			t.Fatalf("Get(%d) after compressed reopen = %v,%v", i, ok, err)
		}
	}
	it, _ := db2.NewIterator()
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	if n != 2000 {
		t.Fatalf("scan over compressed tables saw %d keys", n)
	}
}
