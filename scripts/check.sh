#!/bin/sh
# check.sh — the PR gate: vet, build, and race-test the packages where
# concurrency bugs would hide (the observability substrate, the WAL
# group-commit engine, the batch codec, and the engine), then run the
# allocation-regression tests in a separate non-race pass (the race
# detector's instrumentation allocates, so those tests carry
# //go:build !race), then run a bounded crash-consistency matrix and the
# randomized concurrent oracle test under -race, and finally the
# background-fault suite (health state machine, degraded retry,
# read-only quarantine) under -race. CRASHTEST_SEED and CRASHTEST_OPS
# override the crash/oracle workload (a failing CI run prints the pair
# to replay it).
# The full suite is `go test ./...`.
set -eux

cd "$(dirname "$0")/.."

fmt_dirty=$(gofmt -l .)
if [ -n "$fmt_dirty" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt_dirty" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./internal/obs ./internal/core ./internal/wal ./internal/batch
go test ./internal/core ./internal/obs -run 'Allocs'
go test -race -short ./internal/faultfs ./internal/oracle ./internal/crashtest
go test -race -run 'Health|Degraded|ReadOnly' ./internal/...
