#!/bin/sh
# check.sh — the PR gate: vet, build, and race-test the packages where
# concurrency bugs would hide (the observability substrate and the engine).
# The full suite is `go test ./...`.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./internal/obs ./internal/core
