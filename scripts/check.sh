#!/bin/sh
# check.sh — the PR gate: vet, build, and race-test the packages where
# concurrency bugs would hide (the observability substrate, the WAL
# group-commit engine, the batch codec, and the engine), then run the
# allocation-regression tests in a separate non-race pass (the race
# detector's instrumentation allocates, so those tests carry
# //go:build !race), then run a bounded crash-consistency matrix and the
# randomized concurrent oracle test under -race, and finally the
# background-fault suite (health state machine, degraded retry,
# read-only quarantine) under -race. CRASHTEST_SEED and CRASHTEST_OPS
# override the crash/oracle workload (a failing CI run prints the pair
# to replay it).
# The full suite is `go test ./...`.
set -eux

cd "$(dirname "$0")/.."

fmt_dirty=$(gofmt -l .)
if [ -n "$fmt_dirty" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt_dirty" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./internal/obs ./internal/core ./internal/wal ./internal/batch
go test ./internal/core ./internal/obs ./internal/shard -run 'Allocs'
go test -race -short ./internal/faultfs ./internal/oracle ./internal/crashtest
go test -race -run 'Health|Degraded|ReadOnly' ./internal/...

# Network layer: the shared frame codec, the pipelining/coalescing
# server, and the client SDK — all under -race (8-client oracle test,
# sentinel round-trip across the wire, retry vs degraded store). Then
# the server's own smoke gate: a full client/server sandwich on
# loopback with a goroutine-leak check after shutdown (docs/NETWORK.md).
go test -race ./internal/wire ./internal/server ./clsmclient
go run ./cmd/clsm-server -selftest

# Stall-profile smoke gate: the auto-tuned admission controller must beat
# the legacy binary gate's worst-window put latency without giving up
# meaningful throughput (docs/SCHEDULING.md; recorded runs in
# EXPERIMENTS.md). Thresholds are deliberately looser than the recorded
# numbers — this is a regression tripwire, not a benchmark.
go run ./cmd/clsm-bench -stall-profile -scale smoke -stall-out /tmp/clsm_stall_check.json
awk '
/"worst_window_max_improvement"/ { imp = $2 + 0 }
/"throughput_ratio"/            { tp  = $2 + 0 }
END {
	if (imp <= 1.0 || tp < 0.90) {
		printf "stall gate FAILED: improvement %.2fx (need >1.0), throughput ratio %.2f (need >=0.90)\n", imp, tp
		exit 1
	}
	printf "stall gate ok: improvement %.2fx, throughput ratio %.2f\n", imp, tp
}' /tmp/clsm_stall_check.json

# Sharding gate (docs/SHARDING.md): the shard facade's own -race suite
# (cross-shard MultiGet, merged iterators, batch splitting vs the
# oracle model), the 2-shard crash matrix, the public sharded API, and
# the sharded-engine server path — then a smoke-scale profile run as an
# N=1 parity tripwire. The smoke parity run is a single short pair, so
# the threshold is deliberately loose (±25%); BENCH_shard.json records
# the median-of-pairs number at small scale.
go test -race -short ./internal/shard
go test -race -short -run 'Shard' . ./internal/server ./internal/crashtest
go run ./cmd/clsm-bench -shard-profile -scale smoke -shard-out /tmp/clsm_shard_check.json
awk '
/"speedup"/ { sp = $2 + 0 }
/"ratio"/   { if (!par) par = $2 + 0 }   # first "ratio" is the parity block
END {
	if (sp < 1.0 || par < 0.75 || par > 1.33) {
		printf "shard gate FAILED: speedup %.2fx (need >=1.0), parity %.2f (need 0.75..1.33)\n", sp, par
		exit 1
	}
	printf "shard gate ok: speedup %.2fx, N=1 parity %.2f\n", sp, par
}' /tmp/clsm_shard_check.json

# Transaction gate (docs/TRANSACTIONS.md): the multi-key OCC suites under
# -race — engine txns plus the 8-writer serializability check against the
# oracle's cycle-finding checker, the checker's own unit tests, the
# transactional crash matrix (torn commit records must vanish whole), and
# the remote TxnWrite path end to end — then a smoke-scale profile run as
# a sanity tripwire: every mode must make progress and the optimistic
# retry loop must converge (conflict rate strictly below 1).
go test -race -short -run 'Txn|Serial' . ./internal/core ./internal/oracle ./internal/shard ./internal/crashtest ./internal/server ./clsmclient
go run ./cmd/clsm-bench -txn-profile -scale smoke -txn-out /tmp/clsm_txn_check.json
awk '
/"txn_vs_batch_uniform"/ { ratio = $2 + 0 }
/"hot_conflict_rate"/    { hot = $2 + 0 }
END {
	if (ratio <= 0.05 || hot >= 1.0) {
		printf "txn gate FAILED: txn/batch ratio %.3f (need >0.05), hot conflict rate %.3f (need <1.0)\n", ratio, hot
		exit 1
	}
	printf "txn gate ok: txn/batch ratio %.3f, hot conflict rate %.3f\n", ratio, hot
}' /tmp/clsm_txn_check.json

# Backup gate (docs/BACKUP.md): the backup engine's own -race suite
# (incremental skipping, abort GC, hash-verified restore,
# restore-after-quarantine), the checkpoint/backup surfaces across the
# engine and public API, the fault-injected backup crash matrix, the
# graceful server drain, then a smoke-scale online-backup profile as a
# tripwire: backups must complete under concurrent writers, the restored
# image must be non-empty, and back-to-back backups must not cost more
# than ~2/3 of put throughput (deliberately loose — the recorded numbers
# live in BENCH_backup.json).
go test -race ./internal/backup
go test -race -short -run 'Backup|Checkpoint|Restore' . ./internal/version ./internal/core ./internal/crashtest
go test -race -run 'Shutdown' ./internal/server
go run ./cmd/clsm-bench -backup-profile -scale smoke -backup-out /tmp/clsm_backup_check.json
awk '
/"throughput_ratio"/  { ratio = $2 + 0 }
/"backups_completed"/ { n = $2 + 0 }
/"restored_keys"/     { rk = $2 + 0 }
END {
	if (ratio < 0.33 || n < 1 || rk < 1) {
		printf "backup gate FAILED: throughput ratio %.2f (need >=0.33), %d backups, %d restored keys\n", ratio, n, rk
		exit 1
	}
	printf "backup gate ok: throughput ratio %.2f, %d backups completed, %d keys restored\n", ratio, n, rk
}' /tmp/clsm_backup_check.json

# Value-log gate (docs/VALUELOG.md): the segmented log's own unit suite
# and the core integration tests under -race, the fault-injected vlog
# crash matrix (pointer durability ordering, GC retirement barriers,
# torn-tail recovery), the inline-path allocation gates re-pinned with a
# threshold configured, then a smoke-scale separation profile as a
# tripwire: separated 4 KiB puts must beat inline on throughput or
# rewrite bytes, and the small-value parity cell must stay within ±15%
# (looser than the ±5% recorded in BENCH_vlog.json — smoke runs are
# noisy).
go test -race ./internal/vlog
go test -race -short -run 'Vlog' . ./internal/core ./internal/crashtest
go test ./internal/core -run 'AllocsWithThreshold'
go run ./cmd/clsm-bench -vlog-profile -scale smoke -vlog-out /tmp/clsm_vlog_check.json
awk '
/"put_speedup"/         { sp  = $2 + 0 }
/"rewrite_reduction"/   { rw  = $2 + 0 }
/"small_value_parity"/  { par = $2 + 0 }
END {
	if ((sp < 1.0 && rw < 1.0) || par < 0.85 || par > 1.15) {
		printf "vlog gate FAILED: speedup %.2fx / rewrite reduction %.2fx (need one >=1.0), parity %.3f (need 0.85..1.15)\n", sp, rw, par
		exit 1
	}
	printf "vlog gate ok: speedup %.2fx, rewrite reduction %.2fx, parity %.3f\n", sp, rw, par
}' /tmp/clsm_vlog_check.json
