#!/bin/sh
# bench.sh — the write-path benchmark harness. Runs the parallel put/get
# benchmarks (async, sync-mode group commit, cache-hit reads) across a
# writer-count sweep and emits BENCH_walgroup.json with the raw `go test
# -bench` output plus the headline sync-amortization numbers.
#
# The key metric is syncs/op in BenchmarkPutSyncParallel: 1.0 means one
# device sync per record (no grouping — the single-writer baseline);
# group commit drives it toward 1/group-size as writers are added.
#
# Also runs the scheduler stall profile (legacy gate vs auto-tuned
# admission under overload — docs/SCHEDULING.md) and emits
# BENCH_stall.json. STALL_SCALE picks the run length (smoke/small/full).
#
# Runs the network-layer benchmark (docs/NETWORK.md) and emits
# BENCH_server.json: remote throughput vs connection count (pipelined
# vs classic one-request-at-a-time RPC) and WAL syncs per durable
# remote write under 128 concurrent sync writers.
#
# Finally runs the horizontal-sharding A/B profile (docs/SHARDING.md)
# and emits BENCH_shard.json: sharded vs unsharded put throughput at 8
# concurrent writers, N=1 facade parity (median of interleaved pairs),
# and the adaptive memory governor vs a frozen equal split on a
# hot-shard workload. SHARD_SCALE picks the run length (smoke/small/full).
#
# Finally runs the multi-key transaction profile (docs/TRANSACTIONS.md)
# and emits BENCH_txn.json: optimistic txn commit throughput vs single-key
# RMW and blind atomic batches, on hot vs uniform keyspaces, with
# conflict rates. TXN_SCALE picks the run length (smoke/small/full).
#
# Finally runs the online-backup profile (docs/BACKUP.md) and emits
# BENCH_backup.json: foreground put throughput with vs without
# back-to-back incremental backups shipping concurrently, plus restore
# time for the final image. BACKUP_SCALE picks the run length.
#
# Finally runs the key-value-separation profile (docs/VALUELOG.md) and
# emits BENCH_vlog.json: inline vs value-log put throughput and rewrite
# (flush+compaction) bytes per logical byte at 4 KiB values, plus the
# small-value parity cell proving a configured-but-unused threshold is
# free. VLOG_SCALE picks the run length (smoke/small/full).
set -eu

cd "$(dirname "$0")/.."

OUT=BENCH_walgroup.json
BENCHTIME=${BENCHTIME:-1s}
CPUS=${CPUS:-1,2,4,8}

RAW=$(go test ./internal/core -run 'XXNONE' \
	-bench 'Parallel' -benchtime "$BENCHTIME" -cpu "$CPUS" 2>&1)
printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk -v benchtime="$BENCHTIME" -v cpus="$CPUS" '
BEGIN {
	printf "{\n  \"benchtime\": \"%s\",\n  \"cpus\": \"%s\",\n", benchtime, cpus
	printf "  \"results\": [\n"
	first = 1
}
/^Benchmark/ {
	name = $1
	nsop = ""; syncsop = ""; bop = ""; allocsop = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op") nsop = $(i - 1)
		if ($(i) == "syncs/op") syncsop = $(i - 1)
		if ($(i) == "B/op") bop = $(i - 1)
		if ($(i) == "allocs/op") allocsop = $(i - 1)
	}
	if (!first) printf ",\n"
	first = 0
	printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, nsop
	if (syncsop != "") printf ", \"syncs_per_op\": %s", syncsop
	if (bop != "") printf ", \"bytes_per_op\": %s", bop
	if (allocsop != "") printf ", \"allocs_per_op\": %s", allocsop
	printf "}"
}
END { printf "\n  ]\n}\n" }
' > "$OUT"

echo "wrote $OUT"

go run ./cmd/clsm-bench -stall-profile -scale "${STALL_SCALE:-small}" -stall-out BENCH_stall.json

go run ./cmd/clsm-server -bench -bench-out BENCH_server.json

go run ./cmd/clsm-bench -shard-profile -scale "${SHARD_SCALE:-small}" -shard-out BENCH_shard.json

go run ./cmd/clsm-bench -txn-profile -scale "${TXN_SCALE:-small}" -txn-out BENCH_txn.json

go run ./cmd/clsm-bench -backup-profile -scale "${BACKUP_SCALE:-small}" -backup-out BENCH_backup.json

go run ./cmd/clsm-bench -vlog-profile -scale "${VLOG_SCALE:-small}" -vlog-out BENCH_vlog.json
