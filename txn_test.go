package clsm_test

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"clsm"
)

// TestTxnPublicAPI drives the transaction surface through the public
// package: read-your-writes, buffered isolation, commit atomicity, the
// closure form, and conflict identity.
func TestTxnPublicAPI(t *testing.T) {
	db, err := clsm.OpenPath("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}

	txn, err := db.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := txn.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("txn read a = %q,%v", v, ok)
	}
	txn.Put([]byte("a"), []byte("2"))
	txn.Delete([]byte("gone"))
	if v, _, _ := txn.Get([]byte("a")); string(v) != "2" {
		t.Fatalf("read-your-writes: a = %q", v)
	}
	// Buffered writes are invisible outside the transaction.
	if v, _, _ := db.Get([]byte("a")); string(v) != "1" {
		t.Fatalf("uncommitted write leaked: a = %q", v)
	}
	if txn.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", txn.Pending())
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := db.Get([]byte("a")); string(v) != "2" {
		t.Fatalf("committed write missing: a = %q", v)
	}

	// The closure form rolls back on error ...
	sentinel := errors.New("abort")
	err = db.Txn(func(txn *clsm.Txn) error {
		txn.Put([]byte("a"), []byte("3"))
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Txn returned %v, want fn's error", err)
	}
	if v, _, _ := db.Get([]byte("a")); string(v) != "2" {
		t.Fatalf("rolled-back write leaked: a = %q", v)
	}
	// ... and commits on nil.
	if err := db.TxnCtx(context.Background(), func(txn *clsm.Txn) error {
		return txn.Put([]byte("a"), []byte("4"))
	}); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := db.Get([]byte("a")); string(v) != "4" {
		t.Fatalf("closure commit missing: a = %q", v)
	}

	// A conflicting external write surfaces as ErrTxnConflict.
	txn, _ = db.BeginTxn()
	if _, _, err := txn.Get([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("a"), []byte("external")); err != nil {
		t.Fatal(err)
	}
	txn.Put([]byte("b"), []byte("x"))
	if err := txn.Commit(); !errors.Is(err, clsm.ErrTxnConflict) {
		t.Fatalf("conflicting commit = %v, want ErrTxnConflict", err)
	}
	if _, ok, _ := db.Get([]byte("b")); ok {
		t.Fatal("conflicted txn leaked a write")
	}
}

// TestTxnSharded: transactions on a sharded store — same-shard txns
// commit through the facade, cross-shard keys fail the operation with
// ErrInvalidOptions while leaving the transaction usable, and the
// retry-loop idiom converges under concurrency.
func TestTxnSharded(t *testing.T) {
	const shards = 4
	db, err := clsm.OpenPath("", clsm.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Probe for two keys on one shard and one on another, using only the
	// public API: a cross-shard pair is whatever the facade rejects.
	sameShard := func(a, b string) bool {
		txn, _ := db.BeginTxn()
		defer txn.Rollback()
		if _, _, err := txn.Get([]byte(a)); err != nil {
			t.Fatal(err)
		}
		_, _, err := txn.Get([]byte(b))
		return err == nil
	}
	var same1, same2, other string
	same1 = "sk-000"
	for i := 1; same2 == "" || other == ""; i++ {
		k := fmt.Sprintf("sk-%03d", i)
		if sameShard(same1, k) {
			if same2 == "" {
				same2 = k
			}
		} else if other == "" {
			other = k
		}
	}

	// Same-shard multi-key txn commits atomically.
	if err := db.Txn(func(txn *clsm.Txn) error {
		txn.Put([]byte(same1), []byte("v1"))
		return txn.Put([]byte(same2), []byte("v2"))
	}); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := db.Get([]byte(same2)); !ok || string(v) != "v2" {
		t.Fatalf("%s = %q,%v", same2, v, ok)
	}

	// Cross-shard key fails that op with ErrInvalidOptions; the txn is
	// still usable on its pinned shard.
	txn, _ := db.BeginTxn()
	if err := txn.Put([]byte(same1), []byte("w1")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Put([]byte(other), []byte("w2")); !errors.Is(err, clsm.ErrInvalidOptions) {
		t.Fatalf("cross-shard Put = %v, want ErrInvalidOptions", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit after rejected cross-shard op: %v", err)
	}
	if v, _, _ := db.Get([]byte(same1)); string(v) != "w1" {
		t.Fatalf("pinned-shard write missing: %q", v)
	}
	if _, ok, _ := db.Get([]byte(other)); ok {
		t.Fatal("rejected cross-shard write leaked")
	}

	// Concurrent increment loops on per-shard counters: no lost updates.
	const workers, perWorker = 4, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("ctr-%d", w%2))
			for i := 0; i < perWorker; i++ {
				for {
					err := db.Txn(func(txn *clsm.Txn) error {
						v, _, err := txn.Get(key)
						if err != nil {
							return err
						}
						n, _ := strconv.Atoi(string(v))
						return txn.Put(key, []byte(strconv.Itoa(n+1)))
					})
					if err == nil {
						break
					}
					if !errors.Is(err, clsm.ErrTxnConflict) {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for i := 0; i < 2; i++ {
		v, _, err := db.Get([]byte(fmt.Sprintf("ctr-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		n, _ := strconv.Atoi(string(v))
		total += n
	}
	if total != workers*perWorker {
		t.Fatalf("counters sum to %d, want %d (lost updates)", total, workers*perWorker)
	}
}
