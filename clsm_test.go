package clsm_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"clsm"
)

func openMem(t *testing.T) *clsm.DB {
	t.Helper()
	db, err := clsm.Open(clsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIBasics(t *testing.T) {
	db := openMem(t)
	defer db.Close()

	if err := db.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("hello"))
	if err != nil || !ok || string(v) != "world" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if err := db.Delete([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("hello")); ok {
		t.Fatal("delete failed")
	}
}

func TestPublicAPIOnDisk(t *testing.T) {
	dir := t.TempDir()
	db, err := clsm.Open(clsm.Options{Path: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := clsm.Open(clsm.Options{Path: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, ok, _ := db2.Get([]byte("k0500"))
	if !ok || string(v) != "v500" {
		t.Fatalf("persisted Get = %q,%v", v, ok)
	}
}

func TestPublicBatchAndSnapshot(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	var b clsm.Batch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	db.Put([]byte("a"), []byte("9"))
	if v, _, _ := snap.Get([]byte("a")); string(v) != "1" {
		t.Fatalf("snapshot isolation broken: %q", v)
	}
}

func TestPublicIterator(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	for i := 9; i >= 0; i-- {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte{byte('0' + i)})
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for it.First(); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if len(got) != 10 || got[0] != "k0" || got[9] != "k9" {
		t.Fatalf("iterator order: %v", got)
	}
}

func TestPublicRMW(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				db.RMW([]byte("n"), func(old []byte, exists bool) []byte {
					if !exists {
						return []byte{1}
					}
					return []byte{old[0] + 1}
				})
			}
		}()
	}
	wg.Wait()
	v, ok, _ := db.Get([]byte("n"))
	if !ok || int(v[0]) != 1000%256 {
		t.Fatalf("RMW result = %v,%v want %d", v, ok, 1000%256)
	}
}

func TestPublicMetricsAndCompact(t *testing.T) {
	db, err := clsm.Open(clsm.Options{MemtableSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("v"), 128)
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), val)
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Puts != 2000 || m.Flushes == 0 || m.DiskBytes == 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("x"), nil); err != clsm.ErrClosed {
		t.Fatalf("Put after close = %v", err)
	}
}
