module clsm

go 1.22
