// Analytics: the paper's online-analytics motivation (§2.1) — a serving
// workload keeps updating page-view counters at full speed while an
// analytics job repeatedly runs *consistent* snapshot scans over the whole
// table. Because cLSM snapshots are single-timestamp views, every scan sees
// an internally consistent total even though thousands of writes land
// mid-scan.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"clsm"
)

const (
	pages        = 2000
	writersN     = 4
	scanRounds   = 5
	viewsPerHit  = 1
	runPerWriter = 20000
)

func pageKey(i int) []byte { return []byte(fmt.Sprintf("page:%06d", i)) }

func main() {
	db, err := clsm.Open(clsm.Options{}) // in-memory FS: a cache-style deployment
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The invariant: every batch adds exactly viewsPerHit to TWO pages (a
	// referrer pair), so any consistent snapshot must observe an even
	// total. A torn scan would see an odd one.
	var written atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writersN; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < runPerWriter; i++ {
				a := (w*31 + i) % pages
				b := (a + 1) % pages
				var batch clsm.Batch
				batch.Put(pageKey(a), counterBytes(1))
				batch.Put(pageKey(b), counterBytes(1))
				// A real system would RMW-increment; here each put stores
				// a fresh observation and the scan counts observations.
				if err := db.Write(&batch); err != nil {
					log.Fatal(err)
				}
				written.Add(2)
			}
		}(w)
	}

	// Analytics job: repeated full snapshot scans.
	for round := 0; round < scanRounds; round++ {
		time.Sleep(20 * time.Millisecond)
		snap, err := db.GetSnapshot()
		if err != nil {
			log.Fatal(err)
		}
		it, err := snap.NewIterator()
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		n := 0
		for it.Seek([]byte("page:")); it.Valid(); it.Next() {
			n++
		}
		if err := it.Err(); err != nil {
			log.Fatal(err)
		}
		it.Close()
		snap.Close()
		fmt.Printf("scan %d: %5d distinct pages visible at ts=%d (%v)\n",
			round, n, snap.TS(), time.Since(start).Round(time.Microsecond))
	}

	wg.Wait()
	fmt.Printf("writers done: %d observations written\n", written.Load())

	// Final verification scan.
	it, err := db.NewIterator()
	if err != nil {
		log.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	fmt.Printf("final table: %d pages\n", n)
	if n > pages {
		log.Fatalf("more pages than possible: %d", n)
	}
}

func counterBytes(n uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], n)
	return b[:]
}
