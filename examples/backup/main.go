// Backup: consistent online checkpoint, incremental backup, and verified
// restore using the engine's native machinery (docs/BACKUP.md). The
// backups run while writers keep mutating the store — the checkpoint
// inside each backup pins a consistent version, so every image is an
// exact point in time: every acknowledged key, none of the torn churn.
// The second backup ships only the sstables created since the first
// (content-addressed incremental shipping), and the restore re-hashes
// every object before trusting it.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"clsm"
)

func main() {
	tmp, err := os.MkdirTemp("", "clsm-backup")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	src, err := clsm.Open(clsm.Options{Path: filepath.Join(tmp, "src")})
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()

	// Seed with a known dataset.
	const n = 5000
	for i := 0; i < n; i++ {
		src.Put(key(i), []byte(fmt.Sprintf("stable-%d", i)))
	}

	// Writers churn the store during the backups.
	stop := make(chan struct{})
	var churn atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				src.Put(key((w*31+i)%n), []byte(fmt.Sprintf("churn-%d-%d", w, i)))
				churn.Add(1)
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)

	// A checkpoint is the cheapest consistent image: hard links into a
	// directory that opens as an independent store.
	ckptDir := filepath.Join(tmp, "checkpoint")
	linked, err := src.Checkpoint(ckptDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d tables linked while writers churned\n", linked)

	// Two incremental backups to a remote tier (a directory here; an
	// object store in production), with churn landing between them.
	be, err := clsm.NewBackupEngine(filepath.Join(tmp, "remote"), clsm.RemoteOptions{})
	if err != nil {
		log.Fatal(err)
	}
	m1, err := src.Backup(be)
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	m2, err := src.Backup(be)
	if err != nil {
		log.Fatal(err)
	}
	close(stop)
	wg.Wait()
	o := src.Observer()
	fmt.Printf("backup %d then %d: %d bytes shipped, %d files skipped as already remote; %d concurrent writes landed\n",
		m1.ID, m2.ID, o.BackupBytesShipped.Load(), o.BackupFilesSkipped.Load(), churn.Load())

	// Restore the latest backup into a fresh directory. Every object is
	// re-hashed against its content address on the way down, then the
	// directory opens as an ordinary store.
	restoreDir := filepath.Join(tmp, "restored")
	if _, err := be.Restore(0, restoreDir); err != nil {
		log.Fatal(err)
	}
	dst, err := clsm.Open(clsm.Options{Path: restoreDir})
	if err != nil {
		log.Fatal(err)
	}
	defer dst.Close()

	// The image must be complete (all n seeded keys present — churn only
	// overwrites) and internally consistent (every value is a stable-
	// or churn-write that was acknowledged; never a torn mix).
	it, err := dst.NewIterator()
	if err != nil {
		log.Fatal(err)
	}
	defer it.Close()
	verified := 0
	for it.First(); it.Valid(); it.Next() {
		verified++
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
	if verified != n {
		log.Fatalf("restored store holds %d keys, want %d", verified, n)
	}
	fmt.Printf("restored and verified %d keys — consistent point-in-time image\n", verified)

	// The checkpoint opens too, entirely independent of the live store.
	ck, err := clsm.Open(clsm.Options{Path: ckptDir})
	if err != nil {
		log.Fatal(err)
	}
	defer ck.Close()
	if _, ok, err := ck.Get(key(0)); err != nil || !ok {
		log.Fatalf("checkpoint lost %s: ok=%v err=%v", key(0), ok, err)
	}
	fmt.Println("checkpoint opens as an independent store")
}

func key(i int) []byte { return []byte(fmt.Sprintf("row:%06d", i)) }
