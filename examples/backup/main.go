// Backup: consistent online backup and restore built on snapshot scans —
// the paper's §2.2 argument for large consistent scans within one
// partition, applied to operations. The backup runs while writers keep
// mutating the store, yet captures an exact point-in-time image: every key
// at the snapshot's timestamp, none of the concurrent churn.
package main

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"clsm"
)

func main() {
	tmp, err := os.MkdirTemp("", "clsm-backup")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	src, err := clsm.Open(clsm.Options{Path: filepath.Join(tmp, "src")})
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()

	// Seed with a known dataset.
	const n = 5000
	for i := 0; i < n; i++ {
		src.Put(key(i), []byte(fmt.Sprintf("stable-%d", i)))
	}

	// Writers churn the store during the backup.
	stop := make(chan struct{})
	var churn atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				src.Put(key((w*31+i)%n), []byte(fmt.Sprintf("churn-%d-%d", w, i)))
				churn.Add(1)
			}
		}(w)
	}

	// Let the churn writers get going, then take the snapshot and stream
	// it to the backup file.
	time.Sleep(20 * time.Millisecond)
	snap, err := src.GetSnapshot()
	if err != nil {
		log.Fatal(err)
	}
	backupPath := filepath.Join(tmp, "backup.dat")
	count, err := backup(snap, backupPath)
	snap.Close()
	if err != nil {
		log.Fatal(err)
	}
	close(stop)
	wg.Wait()
	fmt.Printf("backed up %d keys while %d concurrent writes landed\n", count, churn.Load())

	// Restore into a fresh store and verify the image is complete and
	// internally consistent (all values from the seed or pre-snapshot
	// churn; never a torn mix).
	dst, err := clsm.Open(clsm.Options{Path: filepath.Join(tmp, "dst")})
	if err != nil {
		log.Fatal(err)
	}
	defer dst.Close()
	restored, err := restore(dst, backupPath)
	if err != nil {
		log.Fatal(err)
	}
	if restored != count {
		log.Fatalf("restore count %d != backup count %d", restored, count)
	}
	it, _ := dst.NewIterator()
	defer it.Close()
	verified := 0
	for it.First(); it.Valid(); it.Next() {
		verified++
	}
	if verified != count {
		log.Fatalf("restored store holds %d keys, want %d", verified, count)
	}
	fmt.Printf("restored and verified %d keys — consistent point-in-time image\n", verified)
}

func key(i int) []byte { return []byte(fmt.Sprintf("row:%06d", i)) }

// backup streams a snapshot to a length-prefixed binary file.
func backup(snap *clsm.Snapshot, path string) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	it, err := snap.NewIterator()
	if err != nil {
		return 0, err
	}
	defer it.Close()
	count := 0
	var lenBuf [binary.MaxVarintLen64]byte
	writeBlob := func(b []byte) error {
		n := binary.PutUvarint(lenBuf[:], uint64(len(b)))
		if _, err := w.Write(lenBuf[:n]); err != nil {
			return err
		}
		_, err := w.Write(b)
		return err
	}
	for it.First(); it.Valid(); it.Next() {
		if err := writeBlob(it.Key()); err != nil {
			return count, err
		}
		if err := writeBlob(it.Value()); err != nil {
			return count, err
		}
		count++
	}
	if err := it.Err(); err != nil {
		return count, err
	}
	return count, w.Flush()
}

// restore loads a backup file into a store using atomic batches.
func restore(db *clsm.DB, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	readBlob := func() ([]byte, error) {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		b := make([]byte, n)
		_, err = io.ReadFull(r, b)
		return b, err
	}
	count := 0
	var b clsm.Batch
	for {
		k, err := readBlob()
		if err == io.EOF {
			break
		}
		if err != nil {
			return count, err
		}
		v, err := readBlob()
		if err != nil {
			return count, err
		}
		b.Put(k, v)
		count++
		if b.Len() >= 256 {
			if err := db.Write(&b); err != nil {
				return count, err
			}
			b.Reset()
		}
	}
	if b.Len() > 0 {
		if err := db.Write(&b); err != nil {
			return count, err
		}
	}
	return count, nil
}
