// Quickstart: open a store, write, read, scan a range, use an atomic
// batch, and reopen to show durability.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"clsm"
)

func main() {
	dir := filepath.Join(os.TempDir(), "clsm-quickstart")
	defer os.RemoveAll(dir)

	db, err := clsm.Open(clsm.Options{Path: dir})
	if err != nil {
		log.Fatal(err)
	}

	// Basic puts and gets.
	if err := db.Put([]byte("user:1:name"), []byte("ada")); err != nil {
		log.Fatal(err)
	}
	if err := db.Put([]byte("user:2:name"), []byte("grace")); err != nil {
		log.Fatal(err)
	}
	v, ok, err := db.Get([]byte("user:1:name"))
	if err != nil || !ok {
		log.Fatalf("get: %v ok=%v", err, ok)
	}
	fmt.Printf("user:1:name = %s\n", v)

	// An atomic batch: all-or-nothing under concurrent readers.
	var b clsm.Batch
	b.Put([]byte("user:3:name"), []byte("edsger"))
	b.Put([]byte("user:3:city"), []byte("austin"))
	if err := db.Write(&b); err != nil {
		log.Fatal(err)
	}

	// Range scan over a consistent snapshot.
	it, err := db.NewIterator()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all users:")
	for it.Seek([]byte("user:")); it.Valid(); it.Next() {
		fmt.Printf("  %s = %s\n", it.Key(), it.Value())
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
	it.Close()

	// Deletes write a tombstone; compaction reclaims the space later.
	if err := db.Delete([]byte("user:2:name")); err != nil {
		log.Fatal(err)
	}

	// Durability: close and reopen.
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	db, err = clsm.Open(clsm.Options{Path: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if _, ok, _ := db.Get([]byte("user:2:name")); ok {
		log.Fatal("deleted key resurrected")
	}
	v, ok, _ = db.Get([]byte("user:3:city"))
	fmt.Printf("after reopen, user:3:city = %s (ok=%v)\n", v, ok)
}
