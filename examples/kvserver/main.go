// Kvserver: a minimal HTTP key-value façade over a clsm-server. It
// holds no store of its own — every request is translated onto the
// binary wire protocol (docs/NETWORK.md) through a single shared
// clsmclient.Client, whose pipelining multiplexes all concurrent HTTP
// workers over a handful of TCP connections. This is the tiered
// deployment the network layer exists for: stateless protocol
// front-ends fanning in on one store partition.
//
//	GET    /kv/{key}            read
//	PUT    /kv/{key}            write (body = value)
//	DELETE /kv/{key}            delete
//	GET    /scan?start=k&n=10   range query
//	GET    /stats               store health + observability snapshot
//
// Run with -selftest to start an in-process store + clsm-server +
// kvserver sandwich, drive it with concurrent HTTP clients, verify the
// results, and exit.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"clsm"
	"clsm/clsmclient"
	"clsm/internal/server"
)

type kvserver struct {
	c *clsmclient.Client
}

// status maps a remote failure onto an HTTP status: sentinel identity
// survives the wire, so errors.Is picks out the store conditions.
func status(err error) int {
	switch {
	case errors.Is(err, clsm.ErrReadOnly), errors.Is(err, clsm.ErrDegraded):
		return http.StatusServiceUnavailable
	case errors.Is(err, clsm.ErrClosed):
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

func (s *kvserver) handleKV(w http.ResponseWriter, r *http.Request) {
	key := []byte(strings.TrimPrefix(r.URL.Path, "/kv/"))
	if len(key) == 0 {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	switch r.Method {
	case http.MethodGet:
		v, ok, err := s.c.Get(ctx, key)
		if err != nil {
			http.Error(w, err.Error(), status(err))
			return
		}
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(v)
	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.c.Put(ctx, key, body); err != nil {
			http.Error(w, err.Error(), status(err))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if err := s.c.Delete(ctx, key); err != nil {
			http.Error(w, err.Error(), status(err))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *kvserver) handleScan(w http.ResponseWriter, r *http.Request) {
	start := []byte(r.URL.Query().Get("start"))
	n := 10
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 && v <= 10000 {
			n = v
		}
	}
	kvs, err := s.c.Scan(r.Context(), start, n)
	if err != nil {
		http.Error(w, err.Error(), status(err))
		return
	}
	for _, kv := range kvs {
		fmt.Fprintf(w, "%s\t%s\n", kv.Key, kv.Value)
	}
}

func (s *kvserver) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.c.Status(r.Context())
	if err != nil {
		http.Error(w, err.Error(), status(err))
		return
	}
	fmt.Fprintf(w, "health=%s\n", clsm.HealthState(st.Health))
	w.Write(st.Obs)
	w.Write([]byte("\n"))
}

func newMux(c *clsmclient.Client) *http.ServeMux {
	s := &kvserver{c: c}
	mux := http.NewServeMux()
	mux.HandleFunc("/kv/", s.handleKV)
	mux.HandleFunc("/scan", s.handleScan)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	store := flag.String("store", "127.0.0.1:4377", "clsm-server address")
	selftest := flag.Bool("selftest", false, "run a concurrent self-test against an in-process store and exit")
	flag.Parse()

	if *selftest {
		if err := runSelfTest(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("kvserver self-test passed")
		return
	}

	c, err := clsmclient.Dial(*store, clsmclient.WithPoolSize(2))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	log.Printf("kv façade on %s -> store %s", *addr, *store)
	log.Fatal(http.ListenAndServe(*addr, newMux(c)))
}

// runSelfTest stands up the full tier — volatile store, clsm-server on
// a loopback port, kvserver façade on another — and hammers the HTTP
// side with concurrent clients.
func runSelfTest() error {
	db, err := clsm.OpenPath("")
	if err != nil {
		return err
	}
	defer db.Close()
	wireLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ws := server.New(engine{db}, server.Config{})
	go ws.Serve(wireLn)
	defer ws.Close()

	c, err := clsmclient.Dial(wireLn.Addr().String(), clsmclient.WithPoolSize(2))
	if err != nil {
		return err
	}
	defer c.Close()

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: newMux(c)}
	go hs.Serve(httpLn)
	defer hs.Close()
	base := "http://" + httpLn.Addr().String()

	const clients = 8
	const perClient = 100
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				key := fmt.Sprintf("k%d-%d", cl, i)
				req, _ := http.NewRequest(http.MethodPut, base+"/kv/"+key,
					strings.NewReader(fmt.Sprintf("v%d", i)))
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					errs <- fmt.Errorf("put %s: http %d", key, resp.StatusCode)
					return
				}
			}
			// read a few of our own writes back
			for i := 0; i < perClient; i += 17 {
				key := fmt.Sprintf("k%d-%d", cl, i)
				resp, err := http.Get(base + "/kv/" + key)
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if want := fmt.Sprintf("v%d", i); string(body) != want {
					errs <- fmt.Errorf("get %s = %q, want %q", key, body, want)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}

	resp, err := http.Get(base + "/scan?start=k&n=10000")
	if err != nil {
		return err
	}
	scanned, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := 0
	for _, l := range strings.Split(string(scanned), "\n") {
		if strings.HasPrefix(l, "k") {
			lines++
		}
	}
	if lines != clients*perClient {
		return fmt.Errorf("scan saw %d k-keys, want %d", lines, clients*perClient)
	}
	resp, err = http.Get(base + "/stats")
	if err != nil {
		return err
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(string(stats), "health=healthy") {
		return fmt.Errorf("stats = %.40q, want health=healthy prefix", stats)
	}
	fmt.Println("puts ok, reads ok, scan ok, stats ok")
	return nil
}

// engine bridges *clsm.DB to server.Engine: the facade's NewIterator
// returns its own concrete iterator type, the server wants the
// interface.
type engine struct{ *clsm.DB }

func (e engine) NewIterator(opts ...clsm.IterOptions) (server.Iterator, error) {
	it, err := e.DB.NewIterator(opts...)
	if err != nil {
		return nil, err
	}
	return it, nil
}
