// Kvserver: a minimal HTTP key-value service backed by cLSM — the
// "single multicore machine serving a partition" deployment the paper
// targets (§1). Every HTTP worker goroutine drives the store concurrently;
// cLSM's non-blocking reads and mostly non-blocking writes are what let
// one process ride a multicore box instead of sharding into many small
// partitions.
//
//	GET    /kv/{key}            read
//	PUT    /kv/{key}            write (body = value)
//	DELETE /kv/{key}            delete
//	POST   /kv/{key}/incr       atomic counter increment (RMW)
//	GET    /scan?start=k&n=10   range query over a consistent snapshot
//	GET    /stats               engine metrics
//
// Run with -selftest to start the server on a random port, drive it with
// concurrent HTTP clients, verify the results, and exit.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"

	"clsm"
)

type server struct {
	db *clsm.DB
}

func (s *server) handleKV(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/kv/")
	if rest == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	if key, ok := strings.CutSuffix(rest, "/incr"); ok && r.Method == http.MethodPost {
		s.incr(w, []byte(key))
		return
	}
	key := []byte(rest)
	switch r.Method {
	case http.MethodGet:
		v, ok, err := s.db.Get(key)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(v)
	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.db.Put(key, body); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if err := s.db.Delete(key); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *server) incr(w http.ResponseWriter, key []byte) {
	var after int64
	err := s.db.RMW(key, func(old []byte, exists bool) []byte {
		var n int64
		if exists {
			n, _ = strconv.ParseInt(string(old), 10, 64)
		}
		after = n + 1
		return []byte(strconv.FormatInt(after, 10))
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintf(w, "%d", after)
}

func (s *server) handleScan(w http.ResponseWriter, r *http.Request) {
	start := []byte(r.URL.Query().Get("start"))
	n := 10
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 && v <= 10000 {
			n = v
		}
	}
	it, err := s.db.NewIterator()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer it.Close()
	count := 0
	for it.Seek(start); it.Valid() && count < n; it.Next() {
		fmt.Fprintf(w, "%s\t%s\n", it.Key(), it.Value())
		count++
	}
	if err := it.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	m := s.db.Metrics()
	fmt.Fprintf(w, "puts=%d gets=%d rmws=%d flushes=%d compactions=%d disk_bytes=%d\n",
		m.Puts, m.Gets, m.RMWs, m.Flushes, m.Compactions, m.DiskBytes)
}

func newMux(db *clsm.DB) *http.ServeMux {
	s := &server{db: db}
	mux := http.NewServeMux()
	mux.HandleFunc("/kv/", s.handleKV)
	mux.HandleFunc("/scan", s.handleScan)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("db", "", "database directory (empty = in-memory)")
	selftest := flag.Bool("selftest", false, "run a concurrent self-test and exit")
	flag.Parse()

	db, err := clsm.Open(clsm.Options{Path: *dir})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if *selftest {
		if err := runSelfTest(db); err != nil {
			log.Fatal(err)
		}
		fmt.Println("kvserver self-test passed")
		return
	}

	log.Printf("cLSM kv server listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, newMux(db)))
}

func runSelfTest(db *clsm.DB) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: newMux(db)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	const clients = 8
	const perClient = 100
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				key := fmt.Sprintf("k%d-%d", c, i)
				req, _ := http.NewRequest(http.MethodPut, base+"/kv/"+key,
					strings.NewReader(fmt.Sprintf("v%d", i)))
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				ir, err := http.Post(base+"/kv/shared/incr", "", nil)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, ir.Body)
				ir.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}

	resp, err := http.Get(base + "/kv/shared")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := strconv.Itoa(clients * perClient)
	if string(body) != want {
		return fmt.Errorf("shared counter = %s, want %s", body, want)
	}
	resp, err = http.Get(base + "/scan?start=k&n=10000")
	if err != nil {
		return err
	}
	scanned, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := 0
	for _, l := range strings.Split(string(scanned), "\n") {
		if strings.HasPrefix(l, "k") {
			lines++
		}
	}
	if lines != clients*perClient {
		return fmt.Errorf("scan saw %d k-keys, want %d", lines, clients*perClient)
	}
	fmt.Fprintln(os.Stdout, "counter ok, scan ok")
	return nil
}
