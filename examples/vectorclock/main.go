// Vectorclock: the paper's geo-replication motivation (§2.1, §3.3) —
// multisite update reconciliation with vector clocks needs *conditional*
// updates, which cLSM provides as general non-blocking read-modify-write
// operations (Algorithm 3).
//
// Several "replica sites" concurrently merge their local vector clocks
// into the store with RMW. The final clock must dominate every individual
// update: componentwise max never loses an increment, which only holds if
// each read-modify-write is atomic.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"

	"clsm"
)

// Clock is a vector clock: site name -> logical time.
type Clock map[string]uint64

// merge returns the componentwise maximum of two clocks.
func merge(a, b Clock) Clock {
	out := Clock{}
	for s, t := range a {
		out[s] = t
	}
	for s, t := range b {
		if t > out[s] {
			out[s] = t
		}
	}
	return out
}

func encode(c Clock) []byte {
	b, err := json.Marshal(c)
	if err != nil {
		panic(err)
	}
	return b
}

func decode(b []byte) Clock {
	var c Clock
	if err := json.Unmarshal(b, &c); err != nil {
		panic(err)
	}
	return c
}

const (
	sites          = 5
	updatesPerSite = 2000
	objects        = 50
)

func main() {
	db, err := clsm.Open(clsm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	var wg sync.WaitGroup
	for s := 0; s < sites; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			site := fmt.Sprintf("site-%d", s)
			for i := 1; i <= updatesPerSite; i++ {
				obj := []byte(fmt.Sprintf("obj:%02d", i%objects))
				local := Clock{site: uint64(i)}
				err := db.RMW(obj, func(old []byte, exists bool) []byte {
					cur := Clock{}
					if exists {
						cur = decode(old)
					}
					return encode(merge(cur, local))
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}(s)
	}
	wg.Wait()

	// Verify: for every object, the stored clock's entry for each site
	// must equal the largest update that site merged into that object.
	bad := 0
	for o := 0; o < objects; o++ {
		key := []byte(fmt.Sprintf("obj:%02d", o))
		v, ok, err := db.Get(key)
		if err != nil || !ok {
			log.Fatalf("missing object %s: %v", key, err)
		}
		c := decode(v)
		for s := 0; s < sites; s++ {
			site := fmt.Sprintf("site-%d", s)
			// site's largest update index i <= updatesPerSite with
			// i % objects == o
			want := uint64(updatesPerSite - (updatesPerSite-o)%objects)
			if c[site] < want {
				fmt.Printf("LOST UPDATE %s %s: have %d want >= %d\n", key, site, c[site], want)
				bad++
			}
		}
	}
	if bad > 0 {
		log.Fatalf("%d lost updates — RMW atomicity violated", bad)
	}
	fmt.Printf("reconciled %d objects across %d sites (%d concurrent RMWs) — no lost updates\n",
		objects, sites, sites*updatesPerSite)

	m := db.Metrics()
	fmt.Printf("RMW conflicts retried: %d of %d operations\n", m.RMWRetries, m.RMWs)
}
