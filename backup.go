package clsm

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"clsm/internal/backup"
	"clsm/internal/core"
	"clsm/internal/obs"
	"clsm/internal/storage"
)

// BackupManifest describes one completed backup: its id, the id it was
// incremental against, and the content-addressed remote object behind
// every file of every store image (one image per shard for sharded
// stores). See docs/BACKUP.md and the format in docs/FORMATS.md.
type BackupManifest = backup.Manifest

// RemoteOptions tunes how a BackupEngine talks to its remote tier.
type RemoteOptions struct {
	// MaxAttempts caps upload/download attempts per object (default 5).
	// Transient remote errors are retried with capped jittered backoff;
	// anything else aborts the backup cleanly (partial uploads removed,
	// the previous backup stays the restore point).
	MaxAttempts int
	// RetryBase and RetryCap bound the per-object retry backoff (defaults
	// 25ms / 2s).
	RetryBase time.Duration
	RetryCap  time.Duration
}

// BackupEngine ships incremental backups of one or more stores to a
// remote object tier and restores them; see DB.Backup and
// BackupEngine.Restore. The engine itself is stateless — all state lives
// in the remote tier — so any number of engines may point at the same
// remote, but backups against one remote must not run concurrently.
type BackupEngine struct {
	remote storage.FS
	opts   RemoteOptions
}

// NewBackupEngine opens a backup engine over a local directory acting as
// the remote object tier. (Object-store remotes plug in at the same seam:
// anything satisfying the engine's flat put/get/list/delete contract.)
func NewBackupEngine(remotePath string, opts RemoteOptions) (*BackupEngine, error) {
	if remotePath == "" {
		return nil, fmt.Errorf("%w: backup engine requires a remote path", ErrInvalidOptions)
	}
	fs, err := storage.NewOSFS(remotePath)
	if err != nil {
		return nil, err
	}
	return &BackupEngine{remote: fs, opts: opts}, nil
}

// NewMemBackupEngine opens a backup engine over a volatile in-memory
// remote — for tests and demos.
func NewMemBackupEngine(opts RemoteOptions) *BackupEngine {
	return &BackupEngine{remote: storage.NewMemFS(), opts: opts}
}

// engine lowers onto the internal engine, wiring the store's observer so
// backup counters and events land in the same substrate Stats serves.
func (be *BackupEngine) engine(o *obs.Observer) *backup.Engine {
	return backup.New(be.remote, backup.Options{
		MaxAttempts: be.opts.MaxAttempts,
		RetryBase:   be.opts.RetryBase,
		RetryCap:    be.opts.RetryCap,
		Observer:    o,
	})
}

// backupObserver picks the observer backup activity is recorded on: the
// engine's own for an unsharded store, shard 0's for a sharded one (the
// aggregate DB.Observer view includes it either way).
func (db *DB) backupObserver() *obs.Observer {
	if db.sh != nil {
		return db.sh.Observers()[0]
	}
	return db.inner.Observer()
}

// backupSources lists the stores a backup of this DB ships: the single
// engine, or one source per shard labeled with its directory prefix.
func (db *DB) backupSources() []backup.Source {
	if db.sh == nil {
		return []backup.Source{{DB: db.inner}}
	}
	srcs := make([]backup.Source, db.sh.NumShards())
	for i := range srcs {
		srcs[i] = backup.Source{Prefix: shardDir(i), DB: db.sh.Shard(i)}
	}
	return srcs
}

// Checkpoint materializes a consistent, independently openable image of
// the store in dir: the memtable is flushed, then every live sstable is
// hard-linked (copied where linking is impossible) alongside a snapshot
// MANIFEST and CURRENT. The checkpoint shares no mutable state with the
// live store — compactions proceed underneath it, deletions of its tables
// are deferred until the checkpoint completes — and opens as an ordinary
// store. On a sharded store each shard checkpoints into its own
// subdirectory under dir (each shard's image individually consistent,
// exactly like sharded snapshots) and the shard marker is written so dir
// reopens with the same layout. Returns the number of tables linked.
func (db *DB) Checkpoint(dir string) (int, error) {
	if dir == "" {
		return 0, fmt.Errorf("%w: checkpoint requires a target directory", ErrInvalidOptions)
	}
	if db.sh == nil {
		dst, err := storage.NewOSFS(dir)
		if err != nil {
			return 0, err
		}
		return db.inner.Checkpoint(dst)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	marker := strconv.Itoa(db.sh.NumShards()) + "\n"
	if err := os.WriteFile(filepath.Join(dir, shardMarkerFile), []byte(marker), 0o644); err != nil {
		return 0, err
	}
	total := 0
	for i := 0; i < db.sh.NumShards(); i++ {
		dst, err := storage.NewOSFS(filepath.Join(dir, shardDir(i)))
		if err != nil {
			return total, err
		}
		n, err := db.sh.Shard(i).Checkpoint(dst)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Backup ships an incremental backup of the store to the engine's remote
// tier: a checkpoint of every shard, uploaded content-addressed so tables
// the previous backup already shipped are skipped, then a backup manifest
// and the LATEST commit pointer. The work runs as a backup-band job on
// the store's unified scheduler — the lowest priority class, so a long
// ship never starves a flush or compaction. On failure the run's partial
// uploads are removed and the error wraps ErrBackupFailed; the previous
// backup remains the restore point.
func (db *DB) Backup(be *BackupEngine) (*BackupManifest, error) {
	eng := be.engine(db.backupObserver())
	var m *BackupManifest
	var err error
	run := func() { m, err = eng.Backup(db.backupSources()...) }
	var jerr error
	if db.sh != nil {
		jerr = db.sh.Shard(0).RunBackupJob(run)
	} else {
		jerr = db.inner.RunBackupJob(run)
	}
	if jerr != nil {
		return nil, jerr
	}
	return m, err
}

// Latest returns the id and manifest of the newest completed backup in
// the remote tier, or ErrNoBackup when none exists.
func (be *BackupEngine) Latest() (uint64, *BackupManifest, error) {
	return be.engine(obs.New()).Latest()
}

// Restore materializes backup id (0 selects the latest) into path, which
// must not hold a live store. Every object is re-hashed against its
// content address before it is written — a corrupted or torn remote
// object fails the restore with ErrBackupCorrupt instead of producing a
// silently wrong store. A sharded backup restores each shard image into
// its subdirectory and rewrites the shard marker, so path reopens with
// WithShards exactly like the original. The restored directory opens as
// an ordinary store serving every write acknowledged before the backup
// began.
func (be *BackupEngine) Restore(id uint64, path string) (*BackupManifest, error) {
	if path == "" {
		return nil, fmt.Errorf("%w: restore requires a target directory", ErrInvalidOptions)
	}
	m, err := be.engine(obs.New()).Restore(id, func(prefix string) (storage.FS, error) {
		if prefix == "" {
			return storage.NewOSFS(path)
		}
		return storage.NewOSFS(filepath.Join(path, prefix))
	})
	if err != nil {
		return nil, err
	}
	shards := 0
	for _, st := range m.Stores {
		if st.Prefix != "" {
			shards++
		}
	}
	if shards > 0 {
		marker := strconv.Itoa(shards) + "\n"
		if err := os.WriteFile(filepath.Join(path, shardMarkerFile), []byte(marker), 0o644); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// ensure the dual-dispatch DB type always satisfies the internal
// checkpoint contract the backup engine consumes.
var _ backup.Checkpointer = (*core.DB)(nil)
